package wire

import (
	"testing"
	"time"

	"piersearch/internal/dht"
)

// FuzzDecodeRequest hammers the request decoder with mutated frames. The
// decoder must never panic and must reject anything that does not
// round-trip: a frame either decodes to a request whose re-encoding
// decodes identically, or it errors.
func FuzzDecodeRequest(f *testing.F) {
	seeds := []*dht.Request{
		{Kind: dht.RPCPing},
		{Kind: dht.RPCFindNode, Target: dht.StringID("t")},
		{
			Kind:   dht.RPCStore,
			From:   dht.NodeInfo{ID: dht.StringID("from"), Addr: "1.2.3.4:5"},
			Target: dht.StringID("target"),
			Value: dht.StoredValue{
				Data:      []byte("payload"),
				Publisher: dht.StringID("pub"),
				StoredAt:  5 * time.Second,
				TTL:       time.Hour,
			},
		},
		{Kind: dht.RPCApp, App: "pier.chain", Data: []byte{1, 2, 3}},
		{
			Kind: dht.RPCProvide,
			From: dht.NodeInfo{ID: dht.StringID("holder"), Addr: "h:1"},
			Records: []dht.ProviderRecord{
				{Key: dht.StringID("k1"), Data: []byte("v1"), Publisher: dht.StringID("p1"), TTL: time.Minute},
				{Key: dht.StringID("k2"), Data: []byte("v2"), Publisher: dht.StringID("p2")},
			},
		},
	}
	for _, req := range seeds {
		f.Add(EncodeRequest(req))
	}
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff})

	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := DecodeRequest(data)
		if err != nil {
			return
		}
		again, err := DecodeRequest(EncodeRequest(req))
		if err != nil {
			t.Fatalf("re-encoded request does not decode: %v", err)
		}
		if again.Kind != req.Kind || again.From != req.From || again.Target != req.Target ||
			again.App != req.App || string(again.Data) != string(req.Data) ||
			len(again.Records) != len(req.Records) {
			t.Fatalf("round-trip drift:\n  first  %+v\n  second %+v", req, again)
		}
	})
}

// FuzzDecodeResponse is the response-side twin of FuzzDecodeRequest.
func FuzzDecodeResponse(f *testing.F) {
	seeds := []*dht.Response{
		{OK: true},
		{
			From: dht.NodeInfo{ID: dht.StringID("srv"), Addr: "host:1"},
			Closest: []dht.NodeInfo{
				{ID: dht.StringID("a"), Addr: "a:1"},
				{ID: dht.StringID("b"), Addr: "b:2"},
			},
			Values: []dht.StoredValue{
				{Data: []byte("v1"), Publisher: dht.StringID("p1")},
				{Data: []byte("v2"), Publisher: dht.StringID("p2"), TTL: time.Minute},
			},
			Data: []byte("reply"),
			OK:   true,
		},
	}
	for _, resp := range seeds {
		f.Add(EncodeResponse(resp))
	}
	f.Add([]byte{})
	f.Add([]byte{0x01})

	f.Fuzz(func(t *testing.T, data []byte) {
		resp, err := DecodeResponse(data)
		if err != nil {
			return
		}
		again, err := DecodeResponse(EncodeResponse(resp))
		if err != nil {
			t.Fatalf("re-encoded response does not decode: %v", err)
		}
		if again.OK != resp.OK || again.From != resp.From ||
			len(again.Closest) != len(resp.Closest) || len(again.Values) != len(resp.Values) ||
			string(again.Data) != string(resp.Data) {
			t.Fatalf("round-trip drift:\n  first  %+v\n  second %+v", resp, again)
		}
	})
}
