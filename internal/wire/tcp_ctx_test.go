package wire

// Context-propagation tests for the TCP transport: deadlines surface as
// context.DeadlineExceeded (not raw net timeouts), cancellation severs
// in-flight round-trips and waiting callers promptly, and a pre-canceled
// context never touches the network.

import (
	"context"
	"errors"
	"net"
	"testing"
	"time"

	"piersearch/internal/dht"
)

// silentServer accepts connections and reads frames but never replies,
// so calls block in ReadFrame until a deadline or cancel severs them.
func silentServer(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer conn.Close()
				buf := make([]byte, 4096)
				for {
					if _, err := conn.Read(buf); err != nil {
						return
					}
				}
			}()
		}
	}()
	return ln.Addr().String()
}

func TestCallContextDeadlineExceeded(t *testing.T) {
	addr := silentServer(t)
	tr := NewTCPTransport()
	defer tr.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 80*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := tr.CallContext(ctx, dht.NodeInfo{Addr: addr}, pingReq())
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("error = %v, want context.DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Errorf("deadline took %v to fire", elapsed)
	}
}

func TestCallContextCancelSeversInFlight(t *testing.T) {
	addr := silentServer(t)
	tr := NewTCPTransport()
	defer tr.Close()

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := tr.CallContext(ctx, dht.NodeInfo{Addr: addr}, pingReq())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Errorf("cancel took %v to sever the call", elapsed)
	}
}

func TestCallContextPreCanceled(t *testing.T) {
	tr := NewTCPTransport()
	defer tr.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	// Address is never dialed: the canceled context fails the call first.
	_, err := tr.CallContext(ctx, dht.NodeInfo{Addr: "127.0.0.1:1"}, pingReq())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error = %v, want context.Canceled", err)
	}
}

func TestCallContextCancelAbortsPooledWait(t *testing.T) {
	addr := silentServer(t)
	tr := NewTCPTransport()
	tr.MaxConnsPerHost = 1
	defer tr.Close()

	// Occupy the host's single connection slot with a call that will sit
	// in ReadFrame until its own deadline.
	holdCtx, holdCancel := context.WithCancel(context.Background())
	held := make(chan struct{})
	go func() {
		defer close(held)
		tr.CallContext(holdCtx, dht.NodeInfo{Addr: addr}, pingReq()) //nolint:errcheck // severed below
	}()
	time.Sleep(50 * time.Millisecond) // let the holder take the slot

	// The second caller queues on the pool semaphore; canceling it must
	// abort the wait without waiting for the holder to finish.
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := tr.CallContext(ctx, dht.NodeInfo{Addr: addr}, pingReq())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("queued call error = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Errorf("queued call took %v to observe cancel", elapsed)
	}
	holdCancel()
	<-held
}

func TestCallContextNilDeadlinePoolsConnection(t *testing.T) {
	// A successful context-bearing call must still pool its connection:
	// run two calls against a real server and check the second reuses it.
	ln, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	tr := NewTCPTransport()
	defer tr.Close()
	node := dht.NewNode(dht.NodeInfo{ID: dht.RandomID(), Addr: ln.Addr().String()}, tr, dht.Config{})
	srv := NewServer(node, ln)
	go srv.Serve() //nolint:errcheck // closed below
	defer srv.Close()

	for i := 0; i < 2; i++ {
		resp, err := tr.CallContext(context.Background(), node.Info(), pingReq())
		if err != nil || !resp.OK {
			t.Fatalf("call %d: resp=%+v err=%v", i, resp, err)
		}
	}
	tr.mu.Lock()
	hp := tr.conns[ln.Addr().String()]
	tr.mu.Unlock()
	hp.mu.Lock()
	free := len(hp.free)
	hp.mu.Unlock()
	if free != 1 {
		t.Errorf("pooled connections = %d, want 1 (reused)", free)
	}
}
