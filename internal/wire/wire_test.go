package wire

import (
	"bytes"
	"fmt"
	"testing"
	"testing/quick"
	"time"

	"piersearch/internal/dht"
	"piersearch/internal/pier"
	"piersearch/internal/piersearch"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payload := []byte("hello frame")
	if err := WriteFrame(&buf, payload); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(payload) {
		t.Errorf("frame = %q", got)
	}
}

func TestFrameRejectsOversize(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, make([]byte, MaxFrame+1)); err == nil {
		t.Error("oversize write accepted")
	}
	// A hostile length prefix must be rejected without allocating.
	bad := []byte{0xff, 0xff, 0xff, 0xff}
	if _, err := ReadFrame(bytes.NewReader(bad)); err == nil {
		t.Error("hostile length prefix accepted")
	}
}

func TestFrameTruncated(t *testing.T) {
	var buf bytes.Buffer
	WriteFrame(&buf, []byte("full payload"))
	data := buf.Bytes()[:buf.Len()-3]
	if _, err := ReadFrame(bytes.NewReader(data)); err == nil {
		t.Error("truncated frame accepted")
	}
}

func TestRequestCodecRoundTrip(t *testing.T) {
	req := &dht.Request{
		Kind:   dht.RPCStore,
		From:   dht.NodeInfo{ID: dht.StringID("from"), Addr: "1.2.3.4:5"},
		Target: dht.StringID("target"),
		Value: dht.StoredValue{
			Data:      []byte("payload"),
			Publisher: dht.StringID("pub"),
			StoredAt:  5 * time.Second,
			TTL:       time.Hour,
		},
		App:  "pier.chain",
		Data: []byte{1, 2, 3},
	}
	got, err := DecodeRequest(EncodeRequest(req))
	if err != nil {
		t.Fatal(err)
	}
	if got.Kind != req.Kind || got.From != req.From || got.Target != req.Target {
		t.Errorf("header mismatch: %+v", got)
	}
	if string(got.Value.Data) != "payload" || got.Value.TTL != time.Hour || got.Value.StoredAt != 5*time.Second {
		t.Errorf("value mismatch: %+v", got.Value)
	}
	if got.App != req.App || string(got.Data) != string(req.Data) {
		t.Errorf("app payload mismatch")
	}
}

func TestRequestCodecNoValue(t *testing.T) {
	req := &dht.Request{Kind: dht.RPCFindNode, Target: dht.StringID("k")}
	got, err := DecodeRequest(EncodeRequest(req))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Value.Data) != 0 || !got.Value.Publisher.IsZero() {
		t.Errorf("phantom value decoded: %+v", got.Value)
	}
}

func TestResponseCodecRoundTrip(t *testing.T) {
	resp := &dht.Response{
		From: dht.NodeInfo{ID: dht.StringID("srv"), Addr: "host:1"},
		Closest: []dht.NodeInfo{
			{ID: dht.StringID("a"), Addr: "a:1"},
			{ID: dht.StringID("b"), Addr: "b:2"},
		},
		Values: []dht.StoredValue{
			{Data: []byte("v1"), Publisher: dht.StringID("p1")},
			{Data: []byte("v2"), Publisher: dht.StringID("p2"), TTL: time.Minute},
		},
		Data: []byte("reply"),
		OK:   true,
	}
	got, err := DecodeResponse(EncodeResponse(resp))
	if err != nil {
		t.Fatal(err)
	}
	if !got.OK || got.From != resp.From || len(got.Closest) != 2 || len(got.Values) != 2 {
		t.Errorf("response mismatch: %+v", got)
	}
	if got.Closest[1].Addr != "b:2" || string(got.Values[0].Data) != "v1" {
		t.Errorf("content mismatch")
	}
	if string(got.Data) != "reply" {
		t.Errorf("data mismatch")
	}
}

func TestCodecPropertyRoundTrip(t *testing.T) {
	prop := func(app string, data, value []byte, ok bool) bool {
		req := &dht.Request{
			Kind: dht.RPCApp,
			From: dht.NodeInfo{ID: dht.NewID(data), Addr: app},
			App:  app,
			Data: data,
		}
		if len(value) > 0 {
			req.Value = dht.StoredValue{Data: value, Publisher: dht.NewID(value)}
		}
		got, err := DecodeRequest(EncodeRequest(req))
		if err != nil {
			return false
		}
		return got.App == app && string(got.Data) == string(data)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	for _, buf := range [][]byte{nil, {1}, {0, 1, 2}, bytes.Repeat([]byte{0xfe}, 30)} {
		if _, err := DecodeRequest(buf); err == nil {
			t.Errorf("garbage request %v accepted", buf)
		}
		if _, err := DecodeResponse(buf); err == nil {
			t.Errorf("garbage response %v accepted", buf)
		}
	}
	// Trailing bytes must be rejected.
	good := EncodeRequest(&dht.Request{Kind: dht.RPCPing})
	if _, err := DecodeRequest(append(good, 0)); err == nil {
		t.Error("trailing request bytes accepted")
	}
}

// startTCPNode spins up one DHT node served over real TCP loopback.
func startTCPNode(t testing.TB, transport *TCPTransport) (*dht.Node, *Server) {
	t.Helper()
	ln, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	node := dht.NewNode(dht.NodeInfo{ID: dht.RandomID(), Addr: ln.Addr().String()}, transport, dht.Config{})
	srv := NewServer(node, ln)
	go srv.Serve() //nolint:errcheck // closed in cleanup
	t.Cleanup(srv.Close)
	return node, srv
}

func TestTCPClusterPutGet(t *testing.T) {
	transport := NewTCPTransport()
	defer transport.Close()
	const n = 8
	nodes := make([]*dht.Node, n)
	for i := range nodes {
		nodes[i], _ = startTCPNode(t, transport)
	}
	for i := 1; i < n; i++ {
		if err := nodes[i].Bootstrap(nodes[0].Info()); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := nodes[2].Put("ns", "key", []byte("over tcp")); err != nil {
		t.Fatal(err)
	}
	values, _, err := nodes[6].Get("ns", "key")
	if err != nil {
		t.Fatal(err)
	}
	if len(values) != 1 || string(values[0].Data) != "over tcp" {
		t.Fatalf("Get over TCP = %v", values)
	}
}

func TestTCPPierSearchEndToEnd(t *testing.T) {
	// The full §7 stack over real sockets: PIERSearch publishing and both
	// query strategies across TCP-served DHT nodes.
	transport := NewTCPTransport()
	defer transport.Close()
	const n = 6
	nodes := make([]*dht.Node, n)
	engines := make([]*pier.Engine, n)
	for i := range nodes {
		nodes[i], _ = startTCPNode(t, transport)
		engines[i] = pier.NewEngine(nodes[i], pier.Config{OrderBySelectivity: true})
		piersearch.RegisterSchemas(engines[i])
	}
	for i := 1; i < n; i++ {
		if err := nodes[i].Bootstrap(nodes[0].Info()); err != nil {
			t.Fatal(err)
		}
	}
	pub := piersearch.NewPublisher(engines[1], piersearch.ModeBoth, piersearch.Tokenizer{})
	for i := 0; i < 5; i++ {
		f := piersearch.File{Name: fmt.Sprintf("network demo track%02d.mp3", i), Size: 1000, Host: "127.0.0.1", Port: 6346}
		if _, err := pub.PublishFile(f); err != nil {
			t.Fatal(err)
		}
	}
	search := piersearch.NewSearch(engines[4], piersearch.Tokenizer{})
	for _, strat := range []piersearch.Strategy{piersearch.StrategyJoin, piersearch.StrategyCache} {
		results, _, err := search.Query("network demo", strat, 0)
		if err != nil {
			t.Fatalf("%v: %v", strat, err)
		}
		if len(results) != 5 {
			t.Fatalf("%v: %d results, want 5", strat, len(results))
		}
	}
}

func TestTCPCallToDeadNodeFails(t *testing.T) {
	transport := NewTCPTransport()
	transport.DialTimeout = 200 * time.Millisecond
	defer transport.Close()
	_, err := transport.Call(dht.NodeInfo{Addr: "127.0.0.1:1"}, &dht.Request{Kind: dht.RPCPing})
	if err == nil {
		t.Error("call to dead address succeeded")
	}
}

func TestTCPServerCloseUnblocks(t *testing.T) {
	transport := NewTCPTransport()
	defer transport.Close()
	node, srv := startTCPNode(t, transport)
	// One successful call, then close, then calls fail.
	if _, err := transport.Call(node.Info(), &dht.Request{Kind: dht.RPCPing}); err != nil {
		t.Fatal(err)
	}
	srv.Close()
	transport.Close()
	transport.DialTimeout = 200 * time.Millisecond
	if _, err := transport.Call(node.Info(), &dht.Request{Kind: dht.RPCPing}); err == nil {
		t.Error("call after server close succeeded")
	}
}

func BenchmarkCodecRequest(b *testing.B) {
	req := &dht.Request{
		Kind:   dht.RPCStore,
		From:   dht.NodeInfo{ID: dht.StringID("x"), Addr: "10.0.0.1:6346"},
		Target: dht.StringID("y"),
		Value:  dht.StoredValue{Data: make([]byte, 256), Publisher: dht.StringID("p")},
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf := EncodeRequest(req)
		if _, err := DecodeRequest(buf); err != nil {
			b.Fatal(err)
		}
	}
}
