package wire

import (
	"fmt"
	"sync"
	"testing"

	"piersearch/internal/dht"
)

// echoServer starts a raw frame server that echoes every request back as a
// response carrying the request's Data payload.
func echoNode(t testing.TB, transport *TCPTransport) *dht.Node {
	t.Helper()
	node, _ := startTCPNode(t, transport)
	node.RegisterApp("echo", func(_ dht.NodeInfo, data []byte) []byte { return data })
	return node
}

// TestTCPConcurrentSharedConnection drives many concurrent RPC round-trips
// through one TCPTransport restricted to a single pooled connection per
// destination, so every frame shares the same socket. Run with -race: it
// verifies the per-connection locking keeps frames from interleaving.
func TestTCPConcurrentSharedConnection(t *testing.T) {
	for _, maxConns := range []int{1, 4} {
		t.Run(fmt.Sprintf("maxconns-%d", maxConns), func(t *testing.T) {
			transport := NewTCPTransport()
			transport.MaxConnsPerHost = maxConns
			defer transport.Close()
			server := echoNode(t, transport)
			client := echoNode(t, transport)

			const goroutines = 8
			const callsPer = 25
			var wg sync.WaitGroup
			errs := make(chan error, goroutines)
			for g := 0; g < goroutines; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					for i := 0; i < callsPer; i++ {
						payload := []byte(fmt.Sprintf("frame-%d-%d", g, i))
						reply, _, err := client.SendTo(server.Info(), "echo", payload)
						if err != nil {
							errs <- err
							return
						}
						if string(reply) != string(payload) {
							errs <- fmt.Errorf("reply %q for request %q: frames interleaved", reply, payload)
							return
						}
					}
				}(g)
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				t.Fatal(err)
			}
		})
	}
}

// TestTCPConcurrentPutGet exercises the full DHT protocol concurrently
// over the pooled TCP transport.
func TestTCPConcurrentPutGet(t *testing.T) {
	transport := NewTCPTransport()
	defer transport.Close()
	const n = 6
	nodes := make([]*dht.Node, n)
	for i := range nodes {
		nodes[i], _ = startTCPNode(t, transport)
	}
	for i := 1; i < n; i++ {
		if err := nodes[i].Bootstrap(nodes[0].Info()); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for g := 0; g < n; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				key := fmt.Sprintf("key-%d", i%4)
				if _, err := nodes[g].Put("ns", key, []byte(fmt.Sprintf("v-%d-%d", g, i))); err != nil {
					errs <- err
					return
				}
				if _, _, err := nodes[(g+1)%n].Get("ns", key); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
