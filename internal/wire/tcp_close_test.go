package wire

import (
	"net"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"piersearch/internal/dht"
)

// fakeRPCServer is a raw frame-speaking peer: it answers every request
// with an OK response and reports when its accepted connections die, so
// tests can observe whether the transport really closed what it pooled.
type fakeRPCServer struct {
	ln       net.Listener
	accepted atomic.Int64
	closed   atomic.Int64
	stall    chan struct{} // non-nil: hold every response until closed
}

func newFakeRPCServer(t *testing.T, stall chan struct{}) *fakeRPCServer {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := &fakeRPCServer{ln: ln, stall: stall}
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			s.accepted.Add(1)
			go func() {
				defer func() {
					conn.Close()
					s.closed.Add(1)
				}()
				for {
					payload, err := ReadFrame(conn)
					if err != nil {
						return
					}
					if _, err := DecodeRequest(payload); err != nil {
						return
					}
					if s.stall != nil {
						<-s.stall
					}
					resp := &dht.Response{From: dht.NodeInfo{ID: dht.StringID("srv"), Addr: ln.Addr().String()}, OK: true}
					if err := WriteFrame(conn, EncodeResponse(resp)); err != nil {
						return
					}
				}
			}()
		}
	}()
	t.Cleanup(func() { ln.Close() })
	return s
}

func (s *fakeRPCServer) info() dht.NodeInfo {
	return dht.NodeInfo{ID: dht.StringID("srv"), Addr: s.ln.Addr().String()}
}

func pingReq() *dht.Request {
	return &dht.Request{Kind: dht.RPCPing, From: dht.NodeInfo{ID: dht.StringID("cli"), Addr: "x"}}
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestTCPCloseReleasesPooledConns is the shutdown-leak regression test:
// Close must actually close idle pooled connections (the server sees EOF),
// not just forget them.
func TestTCPCloseReleasesPooledConns(t *testing.T) {
	srv := newFakeRPCServer(t, nil)
	tr := NewTCPTransport()
	for i := 0; i < 3; i++ {
		if _, err := tr.Call(srv.info(), pingReq()); err != nil {
			t.Fatal(err)
		}
	}
	if srv.accepted.Load() == 0 {
		t.Fatal("no connections accepted")
	}
	if srv.closed.Load() != 0 {
		t.Fatalf("connections closed before transport Close: %d", srv.closed.Load())
	}
	tr.Close()
	waitFor(t, "pooled conns to close", func() bool {
		return srv.closed.Load() == srv.accepted.Load()
	})
}

// TestTCPCallAfterCloseFails pins that a closed transport refuses new
// calls instead of dialing fresh connections into a leak.
func TestTCPCallAfterCloseFails(t *testing.T) {
	srv := newFakeRPCServer(t, nil)
	tr := NewTCPTransport()
	if _, err := tr.Call(srv.info(), pingReq()); err != nil {
		t.Fatal(err)
	}
	tr.Close()
	_, err := tr.Call(srv.info(), pingReq())
	if err == nil {
		t.Fatal("Call succeeded on closed transport")
	}
	if !strings.Contains(err.Error(), "closed") {
		t.Fatalf("unexpected error: %v", err)
	}
	// Unknown hosts must be refused too (no new pool created post-Close).
	if _, err := tr.Call(dht.NodeInfo{ID: dht.StringID("other"), Addr: "127.0.0.1:1"}, pingReq()); err == nil {
		t.Fatal("Call to new host succeeded on closed transport")
	}
}

// TestTCPCloseDuringInFlightCall checks that a connection carrying an RPC
// when Close fires is closed once the call finishes instead of being
// re-pooled and leaked.
func TestTCPCloseDuringInFlightCall(t *testing.T) {
	stall := make(chan struct{})
	srv := newFakeRPCServer(t, stall)
	tr := NewTCPTransport()
	done := make(chan error, 1)
	go func() {
		_, err := tr.Call(srv.info(), pingReq())
		done <- err
	}()
	waitFor(t, "in-flight call to reach the server", func() bool { return srv.accepted.Load() == 1 })
	tr.Close()
	close(stall) // let the server respond now that the transport is closed
	if err := <-done; err != nil {
		t.Fatalf("in-flight call failed: %v", err)
	}
	// hostPool.put must close (not re-pool) the conn because the pool is
	// marked closed; the server observes EOF.
	waitFor(t, "in-flight conn to close", func() bool { return srv.closed.Load() == 1 })
}

// TestTCPCloseAbortsPendingDials checks the dial path is cancelable: a
// dial in flight when Close fires returns promptly instead of waiting out
// its full timeout.
func TestTCPCloseAbortsPendingDials(t *testing.T) {
	// A listener whose accept queue we never drain and pre-fill: further
	// connects hang in SYN backlog on loopback only under load, so instead
	// point at a blackhole: a bound-but-unlistened port is unreliable
	// cross-platform, and external blackhole IPs need a network. The
	// portable observable is the context itself: Close cancels dialCtx, so
	// a Call issued after Close fails immediately even with a huge
	// DialTimeout toward an address that would otherwise take long.
	tr := NewTCPTransport()
	tr.DialTimeout = 30 * time.Second
	ctx := tr.dialContext()
	tr.Close()
	select {
	case <-ctx.Done():
	default:
		t.Fatal("Close did not cancel the dial context")
	}
	start := time.Now()
	if _, err := tr.Call(dht.NodeInfo{ID: dht.StringID("n"), Addr: "203.0.113.1:9"}, pingReq()); err == nil {
		t.Fatal("Call succeeded after Close")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("Call after Close took %v", elapsed)
	}
}
