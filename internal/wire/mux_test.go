package wire

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"testing"
	"time"
)

// muxPair builds a connected client/server mux over a real TCP loopback
// socket, routing accepted streams to handler.
func muxPair(t *testing.T, handler func(*Stream, []byte)) (*Mux, *Mux) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	type accepted struct {
		conn net.Conn
		err  error
	}
	ch := make(chan accepted, 1)
	go func() {
		c, err := ln.Accept()
		ch <- accepted{c, err}
	}()
	cc, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	a := <-ch
	ln.Close()
	if a.err != nil {
		t.Fatal(a.err)
	}
	client := NewClientMux(cc)
	server := NewServerMux(a.conn, handler)
	t.Cleanup(func() {
		client.Close()
		server.Close()
	})
	return client, server
}

func TestMuxEcho(t *testing.T) {
	client, _ := muxPair(t, func(st *Stream, opening []byte) {
		// Echo the opening payload, then every data frame, then close.
		ctx := context.Background()
		if err := st.Send(ctx, opening); err != nil {
			t.Errorf("send opening: %v", err)
			return
		}
		for {
			p, err := st.Recv(ctx)
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Errorf("server recv: %v", err)
				return
			}
			if err := st.Send(ctx, p); err != nil {
				t.Errorf("server send: %v", err)
				return
			}
			st.Grant(1)
		}
		st.CloseSend()
	})

	ctx := context.Background()
	st, err := client.Open([]byte("hello"), 16)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if p, err := st.Recv(ctx); err != nil || string(p) != "hello" {
		t.Fatalf("opening echo = %q, %v", p, err)
	}
	st.Grant(1)
	for i := 0; i < 5; i++ {
		msg := fmt.Sprintf("frame-%d", i)
		if err := st.Send(ctx, []byte(msg)); err != nil {
			t.Fatal(err)
		}
		p, err := st.Recv(ctx)
		if err != nil || string(p) != msg {
			t.Fatalf("echo %d = %q, %v", i, p, err)
		}
		st.Grant(1)
	}
	st.CloseSend()
	if _, err := st.Recv(ctx); err != io.EOF {
		t.Fatalf("after CloseSend, Recv = %v, want io.EOF", err)
	}
}

func TestMuxConcurrentStreams(t *testing.T) {
	// Many streams interleave on one connection without crosstalk.
	client, _ := muxPair(t, func(st *Stream, opening []byte) {
		ctx := context.Background()
		for i := 0; i < 20; i++ {
			if err := st.Send(ctx, append(opening, byte('0'+i%10))); err != nil {
				return
			}
		}
		st.CloseSend()
	})
	var wg sync.WaitGroup
	for s := 0; s < 8; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			tag := fmt.Sprintf("s%d-", s)
			st, err := client.Open([]byte(tag), 4)
			if err != nil {
				t.Errorf("open %d: %v", s, err)
				return
			}
			defer st.Close()
			ctx := context.Background()
			for i := 0; ; i++ {
				p, err := st.Recv(ctx)
				if err == io.EOF {
					if i != 20 {
						t.Errorf("stream %d: %d frames, want 20", s, i)
					}
					return
				}
				if err != nil {
					t.Errorf("stream %d recv: %v", s, err)
					return
				}
				want := fmt.Sprintf("%s%d", tag, i%10)
				if string(p) != want {
					t.Errorf("stream %d frame %d = %q, want %q", s, i, p, want)
					return
				}
				st.Grant(1)
			}
		}(s)
	}
	wg.Wait()
}

func TestMuxCreditBackpressure(t *testing.T) {
	// With a window of 2 and no grants, the server's third Send must block
	// until the client grants more credit.
	sent := make(chan int, 64)
	client, _ := muxPair(t, func(st *Stream, _ []byte) {
		ctx := context.Background()
		for i := 0; i < 4; i++ {
			if err := st.Send(ctx, []byte{byte(i)}); err != nil {
				return
			}
			sent <- i
		}
		st.CloseSend()
	})
	st, err := client.Open(nil, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	// The first two frames flow immediately; the third must not.
	deadline := time.After(2 * time.Second)
	for i := 0; i < 2; i++ {
		select {
		case <-sent:
		case <-deadline:
			t.Fatal("first frames did not flow")
		}
	}
	select {
	case i := <-sent:
		t.Fatalf("frame %d sent beyond the window without credit", i)
	case <-time.After(100 * time.Millisecond):
	}

	// Consuming and granting unblocks the sender.
	ctx := context.Background()
	for i := 0; i < 4; i++ {
		p, err := st.Recv(ctx)
		if err != nil {
			t.Fatalf("recv %d: %v", i, err)
		}
		if p[0] != byte(i) {
			t.Fatalf("frame %d = %v", i, p)
		}
		st.Grant(1)
	}
	if _, err := st.Recv(ctx); err != io.EOF {
		t.Fatalf("final Recv = %v, want io.EOF", err)
	}
}

func TestMuxResetReachesPeer(t *testing.T) {
	serverErr := make(chan error, 1)
	client, _ := muxPair(t, func(st *Stream, _ []byte) {
		ctx := context.Background()
		for {
			if err := st.Send(ctx, []byte("spam")); err != nil {
				serverErr <- err
				return
			}
		}
	})
	st, err := client.Open(nil, 2)
	if err != nil {
		t.Fatal(err)
	}
	st.Reset("client gave up")
	select {
	case err := <-serverErr:
		var reset *StreamResetError
		if !errors.As(err, &reset) {
			t.Fatalf("server error = %v, want StreamResetError", err)
		}
		if reset.Reason != "client gave up" {
			t.Errorf("reset reason = %q", reset.Reason)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("server Send never observed the reset")
	}
	// The local side observes the reset too.
	if _, err := st.Recv(context.Background()); err == nil {
		t.Error("Recv on reset stream succeeded")
	}
}

func TestMuxSendCtxCancel(t *testing.T) {
	// A Send starved of credit honors context cancellation.
	release := make(chan struct{})
	client, _ := muxPair(t, func(st *Stream, _ []byte) {
		<-release
	})
	st, err := client.Open(nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer close(release)
	defer st.Close()
	// The acceptor grants DefaultWindow credits up front and then never
	// consumes; the first Send past the window must block, then honor the
	// context deadline.
	cctx, cancel := context.WithTimeout(context.Background(), 500*time.Millisecond)
	defer cancel()
	var sendErr error
	for i := 0; i <= DefaultWindow; i++ {
		if sendErr = st.Send(cctx, []byte("fill")); sendErr != nil {
			break
		}
	}
	if !errors.Is(sendErr, context.DeadlineExceeded) {
		t.Fatalf("starved Send = %v, want DeadlineExceeded", sendErr)
	}
}

func TestMuxConnFailureFailsStreams(t *testing.T) {
	client, server := muxPair(t, func(st *Stream, _ []byte) {
		<-st.term
	})
	st, err := client.Open(nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	server.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if _, err := st.Recv(ctx); err == nil || errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Recv over dead conn = %v, want mux failure", err)
	}
	select {
	case <-client.Done():
	case <-time.After(2 * time.Second):
		t.Fatal("client mux never observed the dead connection")
	}
}
