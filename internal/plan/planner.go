package plan

import (
	"context"
	"errors"
	"fmt"

	"piersearch/internal/pier"
)

// Strategy selects the match-phase shape of a compiled plan.
type Strategy int

// Strategies.
const (
	// StrategyAuto lets the planner choose: the single-site cache plan
	// when the catalog has a cache table, the distributed join otherwise.
	StrategyAuto Strategy = iota
	// StrategyJoin matches via the distributed symmetric-hash-join chain
	// over the posting table (Figure 2).
	StrategyJoin
	// StrategyCache ships the whole match to one key owner and filters by
	// substring over the cached fulltext (Figure 3, InvertedCache).
	StrategyCache
)

// String names the strategy.
func (s Strategy) String() string {
	switch s {
	case StrategyJoin:
		return "distributed-join"
	case StrategyCache:
		return "inverted-cache"
	default:
		return "auto"
	}
}

// Options tune plan execution without changing its result set.
type Options struct {
	// Workers bounds concurrent DHT operations per plan stage (probe
	// fan-out, parallel item fetches). 0 means the engine default;
	// 1 compiles the fully sequential chain (no parallel probes, no
	// Bloom pre-join) — the ablation configuration.
	Workers int
	// NoItemFetch stops the plan at the matched join-column values: the
	// root emits one single-column tuple per match instead of resolving
	// them through the item table. For callers that only need IDs.
	NoItemFetch bool
}

// Query is a conjunctive-keyword query over a Catalog's relations.
type Query struct {
	// Terms are the conjunctive keywords, already tokenized.
	Terms []string
	// Strategy picks the match plan; StrategyAuto defers to the planner.
	Strategy Strategy
	// Limit caps the result tuples (0 = unlimited). The cap is pushed
	// into the match phase, so at most Limit candidates are shipped,
	// fetched, or returned by the cache owner.
	Limit int
	// Options tune execution.
	Options Options
}

// Catalog binds a planner to concrete relations: which table holds
// postings, which holds the cached fulltext variant, and which maps the
// join value back to the published item.
type Catalog struct {
	// PostingTable is the inverted relation keyed by term whose JoinCol
	// the chain joins over (e.g. Inverted).
	PostingTable string
	// CacheTable is the fulltext-cached variant for StrategyCache (e.g.
	// InvertedCache); empty disables the cache plan.
	CacheTable string
	// ItemTable resolves matched join values to item tuples (e.g. Item);
	// empty compiles plans that stop at the matched values.
	ItemTable string
	// JoinCol is the posting relation's join column (e.g. fileID).
	JoinCol string
	// TextCol is the cache relation's fulltext column (e.g. fulltext).
	TextCol string
}

// Planner compiles Queries into operator trees over one engine. The zero
// value is not usable: both fields are required.
type Planner struct {
	Engine  *pier.Engine
	Catalog Catalog
}

// CompiledPlan is an executable operator tree plus pointers into its
// interesting interior nodes. Drive it with Root.Open/Next/Close (or
// Run); read Match.Stats() for the match phase alone.
type CompiledPlan struct {
	// Root is the tree to execute.
	Root Operator
	// Match is the subtree root whose emissions are the matched join
	// values — the quantity the paper's §5/§7 cost comparisons count.
	// Match.Stats().Tuples is the match count; TotalStats(Match).Bytes is
	// the matching phase's traffic.
	Match Operator
}

// Run executes the plan to completion under ctx: Open, drain, Close. It
// returns the emitted tuples and the first error (the Close error is
// reported only when the drain succeeded).
func (p *CompiledPlan) Run(ctx context.Context) ([]pier.Tuple, error) {
	if err := p.Root.Open(ctx); err != nil {
		p.Root.Close() //nolint:errcheck // open failed; best-effort release
		return nil, err
	}
	var out []pier.Tuple
	drainErr := Drain(p.Root, func(t pier.Tuple) { out = append(out, t) })
	closeErr := p.Root.Close()
	if drainErr != nil {
		return out, drainErr
	}
	return out, closeErr
}

// Drain pulls op until ErrDone, passing each tuple to fn, and returns the
// first execution error.
func Drain(op Operator, fn func(pier.Tuple)) error {
	for {
		t, err := op.Next()
		if errors.Is(err, ErrDone) {
			return nil
		}
		if err != nil {
			return err
		}
		fn(t)
	}
}

// Plan compiles q into an operator tree.
//
// StrategyJoin:
//
//	Limit → DHTFetch(ItemTable) → ChainJoin(PostingTable)
//
// StrategyCache:
//
//	Limit → DHTFetch(ItemTable) → Distinct → Project(JoinCol) → CacheSelect(CacheTable)
//
// The match-phase operator also carries the limit, so candidate shipping
// stops at Limit survivors; the root Limit only caps the fetched items.
func (p *Planner) Plan(q Query) (*CompiledPlan, error) {
	if p.Engine == nil {
		return nil, fmt.Errorf("plan: planner has no engine")
	}
	if len(q.Terms) == 0 {
		return nil, fmt.Errorf("plan: query has no terms")
	}
	strategy := q.Strategy
	if strategy == StrategyAuto {
		if p.Catalog.CacheTable != "" {
			strategy = StrategyCache
		} else {
			strategy = StrategyJoin
		}
	}

	var match Operator
	switch strategy {
	case StrategyJoin:
		if p.Catalog.PostingTable == "" {
			return nil, fmt.Errorf("plan: catalog has no posting table")
		}
		keys := make([]pier.Value, len(q.Terms))
		for i, term := range q.Terms {
			keys[i] = pier.String(term)
		}
		match = &ChainJoin{
			Engine:     p.Engine,
			Table:      p.Catalog.PostingTable,
			Keys:       keys,
			JoinCol:    p.Catalog.JoinCol,
			Limit:      q.Limit,
			Sequential: q.Options.Workers == 1,
		}

	case StrategyCache:
		if p.Catalog.CacheTable == "" {
			return nil, fmt.Errorf("plan: catalog has no cache table")
		}
		sch, ok := p.Engine.Schema(p.Catalog.CacheTable)
		if !ok {
			return nil, fmt.Errorf("%w: %s", pier.ErrNoSuchTable, p.Catalog.CacheTable)
		}
		joinIdx := sch.ColIndex(p.Catalog.JoinCol)
		if joinIdx < 0 {
			return nil, fmt.Errorf("%w: %s.%s", pier.ErrNoSuchColumn, p.Catalog.CacheTable, p.Catalog.JoinCol)
		}
		match = &Distinct{
			Input: &Project{
				Input: &CacheSelect{
					Engine:  p.Engine,
					Table:   p.Catalog.CacheTable,
					Key:     pier.String(q.Terms[0]),
					Filters: q.Terms[1:],
					TextCol: p.Catalog.TextCol,
					Limit:   q.Limit,
				},
				Cols: []int{joinIdx},
			},
		}

	default:
		return nil, fmt.Errorf("plan: unknown strategy %d", strategy)
	}

	root := match
	if p.Catalog.ItemTable != "" && !q.Options.NoItemFetch {
		root = &DHTFetch{
			Engine:  p.Engine,
			Table:   p.Catalog.ItemTable,
			KeyCol:  0,
			Workers: q.Options.Workers,
			Input:   root,
		}
	}
	root = &Limit{Input: root, N: q.Limit}
	return &CompiledPlan{Root: root, Match: match}, nil
}
