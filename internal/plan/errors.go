package plan

import (
	"context"
	"errors"
)

// Sentinel errors, checkable with errors.Is.
var (
	// ErrDone is returned by Operator.Next once the stream is exhausted.
	// It is not a failure: every well-formed consumption loop ends by
	// observing it. Next keeps returning ErrDone on further calls.
	ErrDone = errors.New("plan: end of stream")

	// ErrCanceled tags any operator error caused by the query's context
	// being canceled or timing out. Errors carrying it also unwrap to the
	// underlying context error, so both
	//
	//	errors.Is(err, plan.ErrCanceled)
	//	errors.Is(err, context.Canceled) // or context.DeadlineExceeded
	//
	// hold. Use ErrCanceled to distinguish "the caller gave up" from a
	// genuine execution failure.
	ErrCanceled = errors.New("plan: query canceled")

	// ErrNotOpen reports Next or Stats-dependent use of an operator whose
	// Open was never called (or whose Open failed).
	ErrNotOpen = errors.New("plan: operator not open")
)

// canceledError tags a context-induced failure with ErrCanceled while
// keeping the original cause (which wraps context.Canceled or
// context.DeadlineExceeded) on the unwrap chain.
type canceledError struct{ cause error }

func (e *canceledError) Error() string { return "plan: query canceled: " + e.cause.Error() }

func (e *canceledError) Is(target error) bool { return target == ErrCanceled }

func (e *canceledError) Unwrap() error { return e.cause }

// Canceled wraps cause (typically chaining to context.Canceled or
// context.DeadlineExceeded) so the result also matches ErrCanceled —
// for layers outside this package, like the network query service's
// client, that surface cancellation through the same sentinel.
func Canceled(cause error) error {
	if cause == nil {
		cause = context.Canceled
	}
	return &canceledError{cause: cause}
}

// ctxWrap classifies err: failures for which the operator's context is
// responsible come back tagged with ErrCanceled, everything else passes
// through unchanged. Operators route every error they surface through it.
func ctxWrap(ctx context.Context, err error) error {
	if err == nil {
		return nil
	}
	if ctx != nil && ctx.Err() != nil || errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return &canceledError{cause: err}
	}
	return err
}
