package plan

import (
	"context"

	"piersearch/internal/dht"
	"piersearch/internal/pier"
)

// OpStats describes the cost one operator has accrued so far. Counters are
// per-operator (a parent does not fold in its children); use TotalStats to
// cost a whole tree.
type OpStats struct {
	// Tuples counts tuples this operator has emitted from Next.
	Tuples int
	// Messages/Bytes/Hops are the DHT traffic this operator issued itself.
	Messages int
	Bytes    int
	Hops     int
	// PostingShipped counts posting-list entries rehashed between nodes by
	// a distributed join this operator ran.
	PostingShipped int
	// MaxInFlight is the high-water mark of concurrent DHT operations this
	// operator kept outstanding.
	MaxInFlight int
	// CacheHits, Coalesced and FanoutReads mirror pier.OpStats: work the
	// hot-key tier answered locally, shared with an identical in-flight
	// call, or spread across replicas. Zero without a tier.
	CacheHits   int
	Coalesced   int
	FanoutReads int
}

// addLookup folds one DHT operation's traffic into s.
func (s *OpStats) addLookup(l dht.LookupStats) {
	s.Messages += l.Messages
	s.Bytes += l.Bytes
	s.Hops += l.Hops
}

// addEngineOp folds a pier engine call's cost into s.
func (s *OpStats) addEngineOp(o pier.OpStats) {
	s.Messages += o.Messages
	s.Bytes += o.Bytes
	s.Hops += o.Hops
	s.PostingShipped += o.PostingShipped
	s.CacheHits += o.CacheHits
	s.Coalesced += o.Coalesced
	s.FanoutReads += o.FanoutReads
	if o.MaxInFlight > s.MaxInFlight {
		s.MaxInFlight = o.MaxInFlight
	}
}

// Add merges o into s. Additive counters sum; MaxInFlight takes the
// maximum (two operators each holding k concurrent ops do not make the
// query 2k-wide unless they actually overlap, which per-op stats cannot
// see — the maximum is the conservative merge).
func (s *OpStats) Add(o OpStats) {
	s.Tuples += o.Tuples
	s.Messages += o.Messages
	s.Bytes += o.Bytes
	s.Hops += o.Hops
	s.PostingShipped += o.PostingShipped
	s.CacheHits += o.CacheHits
	s.Coalesced += o.Coalesced
	s.FanoutReads += o.FanoutReads
	if o.MaxInFlight > s.MaxInFlight {
		s.MaxInFlight = o.MaxInFlight
	}
}

// Operator is one node of a query plan: a pull-based tuple stream in the
// Volcano style, threaded with a context so wide-area work can be canceled
// mid-flight. See doc.go for the full Open/Next/Close contract.
type Operator interface {
	// Open prepares the operator (and, transitively, its inputs) for
	// iteration under ctx. The context governs every DHT operation the
	// operator issues for the lifetime of the iteration, not just the
	// Open call.
	Open(ctx context.Context) error
	// Next returns the next tuple, ErrDone on exhaustion, or an execution
	// error (tagged ErrCanceled when the context caused it).
	Next() (pier.Tuple, error)
	// Close releases resources. Idempotent; legal in any state.
	Close() error
	// Stats reports the cost accrued so far by this operator alone.
	Stats() OpStats
}

// InputsOperator is implemented by operators with child operators; Walk
// and TotalStats use it to traverse a plan tree.
type InputsOperator interface {
	Inputs() []Operator
}

// Walk visits op and every transitive input, parent first.
func Walk(op Operator, fn func(Operator)) {
	if op == nil {
		return
	}
	fn(op)
	if t, ok := op.(InputsOperator); ok {
		for _, c := range t.Inputs() {
			Walk(c, fn)
		}
	}
}

// TotalStats sums the per-operator stats over the whole tree rooted at op:
// the network cost of the query as dispatched from the origin. (Tuples
// sums every operator's emissions — a work measure, not a result count;
// read the root's own Stats for results emitted.)
func TotalStats(op Operator) OpStats {
	var s OpStats
	Walk(op, func(o Operator) { s.Add(o.Stats()) })
	return s
}
