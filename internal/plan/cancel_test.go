package plan_test

// Cancellation acceptance tests over a latency-bearing RealTime
// transport: a canceled wide-area join must return within one RPC round
// of the cancel and leave no goroutines behind (the paper's 30 s chain
// timeout is far too slow a backstop for an interactive client that
// gave up).

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"testing"
	"time"

	"piersearch/internal/dht"
	"piersearch/internal/pier"
	"piersearch/internal/piersearch"
	"piersearch/internal/plan"
	"piersearch/internal/simnet"
)

const oneWay = 60 * time.Millisecond

// newRTEnv seeds a RealTime cluster at zero latency, then turns on the
// wide-area delay for the measured phase.
func newRTEnv(t testing.TB) []*pier.Engine {
	t.Helper()
	rt, nodes, err := simnet.NewRealTimeCluster(12, 5, dht.Config{K: 8}, simnet.Constant(0))
	if err != nil {
		t.Fatal(err)
	}
	var engines []*pier.Engine
	for _, node := range nodes {
		e := pier.NewEngine(node, pier.Config{OrderBySelectivity: true, BloomBits: 1024})
		piersearch.RegisterSchemas(e)
		engines = append(engines, e)
	}
	for i := 0; i < 12; i++ {
		f := piersearch.File{
			Name: fmt.Sprintf("omega sigma track%02d.mp3", i),
			Size: int64(2000 + i), Host: fmt.Sprintf("10.4.0.%d", i), Port: 6346,
		}
		pub := piersearch.NewPublisher(engines[i%len(engines)], piersearch.ModeBoth, piersearch.Tokenizer{})
		if _, err := pub.PublishFile(f); err != nil {
			t.Fatal(err)
		}
	}
	rt.SetLatency(simnet.Constant(oneWay))
	return engines
}

// settleGoroutines waits for the goroutine count to drop back to base.
func settleGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= base {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("goroutines leaked: %d > baseline %d after canceled join", runtime.NumGoroutine(), base)
}

func TestChainJoinCancelPromptNoLeak(t *testing.T) {
	engines := newRTEnv(t)
	base := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	canceledAt := make(chan time.Time, 1)
	go func() {
		time.Sleep(oneWay / 2) // mid-flight: inside the probe fan-out's first leg
		canceledAt <- time.Now()
		cancel()
	}()

	op := &plan.ChainJoin{
		Engine:  engines[2],
		Table:   piersearch.TableInverted,
		Keys:    []pier.Value{pier.String("omega"), pier.String("sigma"), pier.String("track00")},
		JoinCol: "fileID",
	}
	err := op.Open(ctx)
	returned := time.Now()
	op.Close()

	if err == nil {
		t.Fatal("canceled chain join succeeded")
	}
	if !errors.Is(err, plan.ErrCanceled) {
		t.Errorf("error = %v, want plan.ErrCanceled", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("error = %v, want context.Canceled in chain", err)
	}
	// Promptness: back within one RPC round (2 x one-way) of the cancel.
	if elapsed := returned.Sub(<-canceledAt); elapsed > 2*oneWay {
		t.Errorf("join returned %v after cancel, want <= one RPC round (%v)", elapsed, 2*oneWay)
	}
	settleGoroutines(t, base)
}

func TestQueryContextCancelMidStream(t *testing.T) {
	engines := newRTEnv(t)
	base := runtime.NumGoroutine()

	search := piersearch.NewSearch(engines[3], piersearch.Tokenizer{})
	ctx, cancel := context.WithCancel(context.Background())
	rs, err := search.QueryContext(ctx, piersearch.Query{Text: "omega sigma", Strategy: piersearch.StrategyJoin, Workers: 1})
	if err != nil {
		cancel()
		t.Fatal(err)
	}
	// First result arrives, then the client walks away mid-stream.
	if _, err := rs.Next(); err != nil {
		cancel()
		t.Fatalf("first Next: %v", err)
	}
	cancel()
	start := time.Now()
	for {
		_, err := rs.Next()
		if err == nil {
			continue // buffered batch entries may still surface
		}
		if !errors.Is(err, plan.ErrCanceled) {
			t.Errorf("post-cancel Next = %v, want plan.ErrCanceled", err)
		}
		break
	}
	if elapsed := time.Since(start); elapsed > 2*oneWay {
		t.Errorf("stream took %v to observe cancel, want <= %v", elapsed, 2*oneWay)
	}
	rs.Close()
	settleGoroutines(t, base)
}

func TestDeadlineExpiresJoin(t *testing.T) {
	engines := newRTEnv(t)
	ctx, cancel := context.WithTimeout(context.Background(), oneWay/2)
	defer cancel()
	_, _, err := engines[1].ChainJoinConcurrentContext(ctx, piersearch.TableInverted,
		[]pier.Value{pier.String("omega"), pier.String("sigma")}, "fileID", 0)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("deadlined join error = %v, want context.DeadlineExceeded", err)
	}
}
