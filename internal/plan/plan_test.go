package plan_test

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"piersearch/internal/dht"
	"piersearch/internal/pier"
	"piersearch/internal/piersearch"
	"piersearch/internal/plan"
)

// sliceOp is a minimal Operator over in-memory tuples, for unit-testing
// the composing operators without a cluster.
type sliceOp struct {
	tuples []pier.Tuple
	pos    int
	open   bool
	closes int
	stats  plan.OpStats
}

func (s *sliceOp) Open(ctx context.Context) error {
	s.open = true
	s.pos = 0
	return nil
}

func (s *sliceOp) Next() (pier.Tuple, error) {
	if !s.open {
		return nil, plan.ErrNotOpen
	}
	if s.pos >= len(s.tuples) {
		return nil, plan.ErrDone
	}
	t := s.tuples[s.pos]
	s.pos++
	s.stats.Tuples++
	return t, nil
}

func (s *sliceOp) Close() error {
	s.open = false
	s.closes++
	return nil
}

func (s *sliceOp) Stats() plan.OpStats { return s.stats }

func intRows(vals ...int64) []pier.Tuple {
	out := make([]pier.Tuple, len(vals))
	for i, v := range vals {
		out[i] = pier.Tuple{pier.Int(v), pier.String(fmt.Sprintf("row-%d", v))}
	}
	return out
}

func drainAll(t *testing.T, op plan.Operator) []pier.Tuple {
	t.Helper()
	if err := op.Open(context.Background()); err != nil {
		t.Fatalf("open: %v", err)
	}
	var out []pier.Tuple
	if err := plan.Drain(op, func(tp pier.Tuple) { out = append(out, tp) }); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if err := op.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	return out
}

func TestOperatorContract(t *testing.T) {
	src := &sliceOp{tuples: intRows(1, 2)}
	op := &plan.Filter{Input: src, Pred: func(pier.Tuple) bool { return true }}

	// Next before Open.
	if _, err := op.Next(); !errors.Is(err, plan.ErrNotOpen) {
		t.Errorf("Next before Open = %v, want ErrNotOpen", err)
	}
	if err := op.Open(context.Background()); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := op.Next(); err != nil {
			t.Fatalf("Next %d: %v", i, err)
		}
	}
	// ErrDone persists.
	for i := 0; i < 3; i++ {
		if _, err := op.Next(); !errors.Is(err, plan.ErrDone) {
			t.Errorf("exhausted Next = %v, want ErrDone", err)
		}
	}
	// Close idempotent; Next after Close is ErrNotOpen.
	if err := op.Close(); err != nil {
		t.Fatal(err)
	}
	if err := op.Close(); err != nil {
		t.Errorf("second Close = %v", err)
	}
	if _, err := op.Next(); !errors.Is(err, plan.ErrNotOpen) {
		t.Errorf("Next after Close = %v, want ErrNotOpen", err)
	}
}

func TestFilterLimitProjectDistinct(t *testing.T) {
	src := &sliceOp{tuples: intRows(1, 2, 3, 4, 4, 5, 6)}
	tree := &plan.Limit{
		N: 2,
		Input: &plan.Project{
			Cols: []int{1},
			Input: &plan.Distinct{
				Input: &plan.Filter{
					Input: src,
					Pred:  func(tp pier.Tuple) bool { return tp[0].Num()%2 == 0 },
				},
			},
		},
	}
	out := drainAll(t, tree)
	if len(out) != 2 || out[0][0].Text() != "row-2" || out[1][0].Text() != "row-4" {
		t.Fatalf("tree output = %#v", out)
	}
	if len(out[0]) != 1 {
		t.Errorf("project kept %d cols", len(out[0]))
	}
	// Limit stopped pulling: source never reached row 6.
	if src.stats.Tuples >= len(src.tuples) {
		t.Errorf("limit did not stop upstream pulls: source emitted %d", src.stats.Tuples)
	}
	if src.closes != 1 {
		t.Errorf("source closed %d times", src.closes)
	}
	// Walk sees the whole tree.
	n := 0
	plan.Walk(tree, func(plan.Operator) { n++ })
	if n != 5 {
		t.Errorf("Walk visited %d operators, want 5", n)
	}
}

func TestLimitZeroMeansUnlimited(t *testing.T) {
	out := drainAll(t, &plan.Limit{Input: &sliceOp{tuples: intRows(1, 2, 3)}, N: 0})
	if len(out) != 3 {
		t.Fatalf("Limit{N:0} yielded %d tuples, want 3", len(out))
	}
}

func TestGroupByAdapter(t *testing.T) {
	// (key, value): group by col 0, count + sum col 1.
	rows := []pier.Tuple{
		{pier.String("a"), pier.Int(1)},
		{pier.String("b"), pier.Int(10)},
		{pier.String("a"), pier.Int(2)},
	}
	out := drainAll(t, &plan.GroupBy{
		Input:   &sliceOp{tuples: rows},
		KeyCols: []int{0},
		Aggs:    []pier.AggSpec{{Kind: pier.AggCount}, {Kind: pier.AggSum, Col: 1}},
	})
	if len(out) != 2 {
		t.Fatalf("groups = %#v", out)
	}
	if out[0][0].Text() != "a" || out[0][1].Num() != 2 || out[0][2].Num() != 3 {
		t.Errorf("group a = %#v", out[0])
	}
	if out[1][0].Text() != "b" || out[1][1].Num() != 1 || out[1][2].Num() != 10 {
		t.Errorf("group b = %#v", out[1])
	}
}

func TestCanceledContextTagsErrors(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	op := &plan.GroupBy{Input: &sliceOp{tuples: intRows(1)}, KeyCols: []int{0}}
	err := op.Open(ctx)
	if !errors.Is(err, plan.ErrCanceled) {
		t.Errorf("Open under canceled ctx = %v, want ErrCanceled", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("error does not unwrap to context.Canceled: %v", err)
	}
}

// clusterEnv is a LocalNetwork cluster with PIERSearch deployed.
type clusterEnv struct {
	engines []*pier.Engine
}

func newClusterEnv(t testing.TB, n int) *clusterEnv {
	t.Helper()
	cluster, err := dht.NewCluster(n, 7, dht.Config{})
	if err != nil {
		t.Fatal(err)
	}
	env := &clusterEnv{}
	for _, node := range cluster.Nodes {
		e := pier.NewEngine(node, pier.Config{OrderBySelectivity: true})
		piersearch.RegisterSchemas(e)
		env.engines = append(env.engines, e)
	}
	for i := 0; i < 12; i++ {
		f := piersearch.File{
			Name: fmt.Sprintf("alpha beta track%02d.mp3", i),
			Size: int64(1000 + i), Host: fmt.Sprintf("10.3.0.%d", i), Port: 6346,
		}
		pub := piersearch.NewPublisher(env.engines[i%n], piersearch.ModeBoth, piersearch.Tokenizer{})
		if _, err := pub.PublishFile(f); err != nil {
			t.Fatal(err)
		}
	}
	return env
}

func fileIDs(tuples []pier.Tuple) map[string]bool {
	out := map[string]bool{}
	for _, tp := range tuples {
		out[tp[0].Key()] = true
	}
	return out
}

func TestPlannerStrategiesAgree(t *testing.T) {
	env := newClusterEnv(t, 20)
	planner := plan.Planner{Engine: env.engines[4], Catalog: piersearch.Catalog()}

	run := func(q plan.Query) []pier.Tuple {
		t.Helper()
		compiled, err := planner.Plan(q)
		if err != nil {
			t.Fatal(err)
		}
		out, err := compiled.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return out
	}

	terms := []string{"alpha", "beta"}
	joinOut := run(plan.Query{Terms: terms, Strategy: plan.StrategyJoin})
	cacheOut := run(plan.Query{Terms: terms, Strategy: plan.StrategyCache})
	if len(joinOut) != 12 {
		t.Fatalf("join plan returned %d items, want 12", len(joinOut))
	}
	j, c := fileIDs(joinOut), fileIDs(cacheOut)
	if len(j) != len(c) {
		t.Fatalf("join %d fileIDs, cache %d", len(j), len(c))
	}
	for id := range j {
		if !c[id] {
			t.Fatalf("fileID in join but not cache plan")
		}
	}

	// NoItemFetch stops at single-column fileID tuples.
	idsOnly := run(plan.Query{Terms: terms, Strategy: plan.StrategyJoin, Options: plan.Options{NoItemFetch: true}})
	if len(idsOnly) != 12 || len(idsOnly[0]) != 1 {
		t.Fatalf("NoItemFetch output = %d tuples x %d cols", len(idsOnly), len(idsOnly[0]))
	}

	// Limit is pushed into the match phase and caps the output.
	limited := run(plan.Query{Terms: terms, Strategy: plan.StrategyJoin, Limit: 3})
	if len(limited) != 3 {
		t.Fatalf("limit 3 returned %d", len(limited))
	}

	// Match stats surface the match count and the matching-phase bytes.
	compiled, err := planner.Plan(plan.Query{Terms: terms, Strategy: plan.StrategyJoin})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := compiled.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := compiled.Match.Stats().Tuples; got != 12 {
		t.Errorf("match tuples = %d, want 12", got)
	}
	total := plan.TotalStats(compiled.Root)
	matchBytes := plan.TotalStats(compiled.Match).Bytes
	if matchBytes <= 0 || matchBytes >= total.Bytes {
		t.Errorf("match bytes %d not within total %d", matchBytes, total.Bytes)
	}
}

func TestPlannerErrors(t *testing.T) {
	env := newClusterEnv(t, 8)
	planner := plan.Planner{Engine: env.engines[0], Catalog: piersearch.Catalog()}
	if _, err := planner.Plan(plan.Query{}); err == nil {
		t.Error("empty query accepted")
	}
	noCache := planner
	noCache.Catalog.CacheTable = ""
	if _, err := noCache.Plan(plan.Query{Terms: []string{"x"}, Strategy: plan.StrategyCache}); err == nil {
		t.Error("cache strategy without cache table accepted")
	}
	// Auto falls back to join without a cache table.
	compiled, err := noCache.Plan(plan.Query{Terms: []string{"alpha"}})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := compiled.Match.(*plan.ChainJoin); !ok {
		t.Errorf("auto strategy without cache table compiled %T, want ChainJoin", compiled.Match)
	}
}
