package plan

import (
	"context"
	"errors"
	"fmt"

	"piersearch/internal/pier"
)

// sliceSource is the shared core of leaf operators that materialize their
// tuples at Open and stream them from Next.
type sliceSource struct {
	ctx    context.Context
	open   bool
	tuples []pier.Tuple
	pos    int
	stats  OpStats
}

func (s *sliceSource) next() (pier.Tuple, error) {
	if !s.open {
		return nil, ErrNotOpen
	}
	if err := s.ctx.Err(); err != nil {
		return nil, ctxWrap(s.ctx, err)
	}
	if s.pos >= len(s.tuples) {
		return nil, ErrDone
	}
	t := s.tuples[s.pos]
	s.pos++
	s.stats.Tuples++
	return t, nil
}

func (s *sliceSource) close() error {
	s.open = false
	s.tuples = nil
	s.pos = 0
	return nil
}

// LocalScan scans the posting list of (Table, Key) held in this node's own
// DHT store. No network traffic.
type LocalScan struct {
	Engine *pier.Engine
	Table  string
	Key    pier.Value

	src sliceSource
}

// Open implements Operator.
func (o *LocalScan) Open(ctx context.Context) error {
	tuples, err := o.Engine.LocalScan(o.Table, o.Key)
	if err != nil {
		return ctxWrap(ctx, err)
	}
	o.src = sliceSource{ctx: ctx, open: true, tuples: tuples}
	return nil
}

// Next implements Operator.
func (o *LocalScan) Next() (pier.Tuple, error) { return o.src.next() }

// Close implements Operator.
func (o *LocalScan) Close() error { return o.src.close() }

// Stats implements Operator.
func (o *LocalScan) Stats() OpStats { return o.src.stats }

// ChainJoin runs the distributed symmetric-hash-join chain over the owners
// of Keys (the paper's Figure 2 plan) and emits one single-column tuple
// per surviving join value. With Sequential unset it uses the concurrent
// chain: parallel count+Bloom probes per key, smallest-first ordering, and
// an intersected-Bloom pre-join pruning the shipped candidates.
//
// The chain protocol delivers its survivors in one result message, so the
// network work happens during Open; Next streams the buffered values.
// Canceling the context during Open aborts the probe fan-out, the
// dispatch RPC, and the wait for the result.
type ChainJoin struct {
	Engine     *pier.Engine
	Table      string
	Keys       []pier.Value
	JoinCol    string
	Limit      int // max join values returned; 0 = unlimited
	Sequential bool

	src sliceSource
}

// Open implements Operator.
func (o *ChainJoin) Open(ctx context.Context) error {
	join := o.Engine.ChainJoinConcurrentContext
	if o.Sequential {
		join = o.Engine.ChainJoinContext
	}
	values, st, err := join(ctx, o.Table, o.Keys, o.JoinCol, o.Limit)
	o.src = sliceSource{ctx: ctx}
	o.src.stats.addEngineOp(st)
	if err != nil {
		return ctxWrap(ctx, err)
	}
	o.src.open = true
	o.src.tuples = make([]pier.Tuple, len(values))
	for i, v := range values {
		o.src.tuples[i] = pier.Tuple{v}
	}
	return nil
}

// Next implements Operator.
func (o *ChainJoin) Next() (pier.Tuple, error) { return o.src.next() }

// Close implements Operator.
func (o *ChainJoin) Close() error { return o.src.close() }

// Stats implements Operator.
func (o *ChainJoin) Stats() OpStats { return o.src.stats }

// CacheSelect ships the whole selection to the single owner of (Table,
// Key) — the paper's Figure 3 InvertedCache plan — and emits the tuples
// whose TextCol contains every Filters substring (case-folded). The
// round-trip happens during Open; Next streams the reply.
type CacheSelect struct {
	Engine  *pier.Engine
	Table   string
	Key     pier.Value
	Filters []string
	TextCol string
	Limit   int // max tuples returned by the owner; 0 = unlimited

	src sliceSource
}

// Open implements Operator.
func (o *CacheSelect) Open(ctx context.Context) error {
	tuples, st, err := o.Engine.CacheSelectContext(ctx, o.Table, o.Key, o.Filters, o.TextCol, o.Limit)
	o.src = sliceSource{ctx: ctx}
	o.src.stats.addEngineOp(st)
	if err != nil {
		return ctxWrap(ctx, err)
	}
	o.src.open = true
	o.src.tuples = tuples
	return nil
}

// Next implements Operator.
func (o *CacheSelect) Next() (pier.Tuple, error) { return o.src.next() }

// Close implements Operator.
func (o *CacheSelect) Close() error { return o.src.close() }

// Stats implements Operator.
func (o *CacheSelect) Stats() OpStats { return o.src.stats }

// DHTFetch resolves each input tuple's KeyCol value to the tuples stored
// in the DHT under (Table, value), emitting the fetched tuples. Fetches
// run Workers at a time: the operator pulls up to Workers keys from its
// input, resolves the batch in parallel, streams the results, and only
// then pulls more — so a consumer that stops early (a Limit above, a
// canceled stream) wastes at most one batch of lookups.
type DHTFetch struct {
	Engine  *pier.Engine
	Table   string
	KeyCol  int
	Workers int // parallel fetches per batch; <=0 means the engine default
	Input   Operator

	ctx       context.Context
	open      bool
	inputDone bool
	buf       []pier.Tuple
	pos       int
	stats     OpStats
}

// Open implements Operator.
func (o *DHTFetch) Open(ctx context.Context) error {
	if err := o.Input.Open(ctx); err != nil {
		return err
	}
	o.ctx = ctx
	o.open = true
	o.inputDone = false
	o.buf, o.pos = nil, 0
	return nil
}

// Next implements Operator.
func (o *DHTFetch) Next() (pier.Tuple, error) {
	if !o.open {
		return nil, ErrNotOpen
	}
	for {
		if o.pos < len(o.buf) {
			t := o.buf[o.pos]
			o.pos++
			o.stats.Tuples++
			return t, nil
		}
		if o.inputDone {
			return nil, ErrDone
		}
		if err := o.fillBatch(); err != nil {
			return nil, err
		}
	}
}

// fillBatch pulls up to one batch of keys from the input and resolves
// them in parallel. A missing value (e.g. its holder churned out) drops
// that key's tuples; lookup errors other than cancellation are likewise
// absorbed, matching the best-effort fetch phase of the legacy paths.
func (o *DHTFetch) fillBatch() error {
	workers := o.Workers
	if workers <= 0 {
		workers = o.Engine.Workers()
	}
	var keys []pier.Value
	for len(keys) < workers {
		t, err := o.Input.Next()
		if errors.Is(err, ErrDone) {
			o.inputDone = true
			break
		}
		if err != nil {
			return err
		}
		if o.KeyCol >= len(t) {
			return fmt.Errorf("plan: dht fetch: input tuple has %d columns, key col is %d", len(t), o.KeyCol)
		}
		keys = append(keys, t[o.KeyCol])
	}
	if len(keys) == 0 {
		return nil
	}
	fetched := make([][]pier.Tuple, len(keys))
	lookups := make([]pier.OpStats, len(keys))
	inFlight := pier.ForEachCtx(o.ctx, len(keys), workers, func(i int) {
		// Writes are per-index; the pool's WaitGroup orders them before
		// the merge below. Fetch errors other than cancellation drop the
		// key's tuples, matching the best-effort legacy fetch phase. The
		// cached variant serves hot keys from the tier and coalesces
		// identical concurrent fetches; without a tier it is FetchContext.
		tuples, st, _ := o.Engine.FetchCachedContext(o.ctx, o.Table, keys[i])
		fetched[i] = tuples
		lookups[i] = st
	})
	var stats OpStats
	for _, st := range lookups {
		stats.addEngineOp(st)
	}
	if inFlight > stats.MaxInFlight {
		stats.MaxInFlight = inFlight
	}
	o.stats.Add(stats) // batch stats carry no Tuples; Next counts emissions
	if err := o.ctx.Err(); err != nil {
		return ctxWrap(o.ctx, err)
	}
	o.buf, o.pos = o.buf[:0], 0
	for _, ts := range fetched {
		o.buf = append(o.buf, ts...)
	}
	return nil
}

// Close implements Operator.
func (o *DHTFetch) Close() error {
	o.open = false
	o.buf, o.pos = nil, 0
	return o.Input.Close()
}

// Stats implements Operator.
func (o *DHTFetch) Stats() OpStats { return o.stats }

// Inputs implements InputsOperator.
func (o *DHTFetch) Inputs() []Operator { return []Operator{o.Input} }

// Filter passes through the input tuples for which Pred is true.
type Filter struct {
	Input Operator
	Pred  func(pier.Tuple) bool

	open  bool
	stats OpStats
}

// Open implements Operator.
func (o *Filter) Open(ctx context.Context) error {
	if err := o.Input.Open(ctx); err != nil {
		return err
	}
	o.open = true
	return nil
}

// Next implements Operator.
func (o *Filter) Next() (pier.Tuple, error) {
	if !o.open {
		return nil, ErrNotOpen
	}
	for {
		t, err := o.Input.Next()
		if err != nil {
			return nil, err
		}
		if o.Pred(t) {
			o.stats.Tuples++
			return t, nil
		}
	}
}

// Close implements Operator.
func (o *Filter) Close() error {
	o.open = false
	return o.Input.Close()
}

// Stats implements Operator.
func (o *Filter) Stats() OpStats { return o.stats }

// Inputs implements InputsOperator.
func (o *Filter) Inputs() []Operator { return []Operator{o.Input} }

// Limit emits at most N input tuples (N <= 0 means unlimited: the
// planner composes Limit unconditionally and zero disables it). Once the
// limit is reached Next returns ErrDone without pulling the input again,
// which is what stops upstream DHT fetches for candidates that can no
// longer rank.
type Limit struct {
	Input Operator
	N     int

	open  bool
	seen  int
	stats OpStats
}

// Open implements Operator.
func (o *Limit) Open(ctx context.Context) error {
	if err := o.Input.Open(ctx); err != nil {
		return err
	}
	o.open = true
	o.seen = 0
	return nil
}

// Next implements Operator.
func (o *Limit) Next() (pier.Tuple, error) {
	if !o.open {
		return nil, ErrNotOpen
	}
	if o.N > 0 && o.seen >= o.N {
		return nil, ErrDone
	}
	t, err := o.Input.Next()
	if err != nil {
		return nil, err
	}
	o.seen++
	o.stats.Tuples++
	return t, nil
}

// Close implements Operator.
func (o *Limit) Close() error {
	o.open = false
	return o.Input.Close()
}

// Stats implements Operator.
func (o *Limit) Stats() OpStats { return o.stats }

// Inputs implements InputsOperator.
func (o *Limit) Inputs() []Operator { return []Operator{o.Input} }

// Project restricts each input tuple to Cols, in the given order.
type Project struct {
	Input Operator
	Cols  []int

	open  bool
	stats OpStats
}

// Open implements Operator.
func (o *Project) Open(ctx context.Context) error {
	if err := o.Input.Open(ctx); err != nil {
		return err
	}
	o.open = true
	return nil
}

// Next implements Operator.
func (o *Project) Next() (pier.Tuple, error) {
	if !o.open {
		return nil, ErrNotOpen
	}
	t, err := o.Input.Next()
	if err != nil {
		return nil, err
	}
	out := make(pier.Tuple, len(o.Cols))
	for i, c := range o.Cols {
		if c >= len(t) {
			return nil, fmt.Errorf("plan: project: input tuple has %d columns, want col %d", len(t), c)
		}
		out[i] = t[c]
	}
	o.stats.Tuples++
	return out, nil
}

// Close implements Operator.
func (o *Project) Close() error {
	o.open = false
	return o.Input.Close()
}

// Stats implements Operator.
func (o *Project) Stats() OpStats { return o.stats }

// Inputs implements InputsOperator.
func (o *Project) Inputs() []Operator { return []Operator{o.Input} }

// Distinct suppresses duplicate tuples. With Cols set, only those columns
// form the identity (the whole tuple otherwise); the first tuple of each
// identity is emitted as-is.
type Distinct struct {
	Input Operator
	Cols  []int

	open  bool
	seen  map[string]bool
	stats OpStats
}

// Open implements Operator.
func (o *Distinct) Open(ctx context.Context) error {
	if err := o.Input.Open(ctx); err != nil {
		return err
	}
	o.open = true
	o.seen = make(map[string]bool)
	return nil
}

// Next implements Operator.
func (o *Distinct) Next() (pier.Tuple, error) {
	if !o.open {
		return nil, ErrNotOpen
	}
	for {
		t, err := o.Input.Next()
		if err != nil {
			return nil, err
		}
		key := ""
		if len(o.Cols) == 0 {
			for _, v := range t {
				key += v.Key() + "\x00"
			}
		} else {
			for _, c := range o.Cols {
				if c >= len(t) {
					return nil, fmt.Errorf("plan: distinct: input tuple has %d columns, want col %d", len(t), c)
				}
				key += t[c].Key() + "\x00"
			}
		}
		if !o.seen[key] {
			o.seen[key] = true
			o.stats.Tuples++
			return t, nil
		}
	}
}

// Close implements Operator.
func (o *Distinct) Close() error {
	o.open = false
	o.seen = nil
	return o.Input.Close()
}

// Stats implements Operator.
func (o *Distinct) Stats() OpStats { return o.stats }

// Inputs implements InputsOperator.
func (o *Distinct) Inputs() []Operator { return []Operator{o.Input} }

// GroupBy adapts pier.GroupBy to the operator tree: it drains its input at
// Open (checking the context between tuples), groups by KeyCols and
// computes Aggs per group via the existing aggregation machinery, then
// streams the grouped rows. Output rows are the group key columns followed
// by one column per aggregate, sorted by group key.
type GroupBy struct {
	Input   Operator
	KeyCols []int
	Aggs    []pier.AggSpec

	src sliceSource
}

// Open implements Operator.
func (o *GroupBy) Open(ctx context.Context) error {
	if err := o.Input.Open(ctx); err != nil {
		return err
	}
	var in []pier.Tuple
	for {
		if err := ctx.Err(); err != nil {
			return ctxWrap(ctx, err)
		}
		t, err := o.Input.Next()
		if errors.Is(err, ErrDone) {
			break
		}
		if err != nil {
			return err
		}
		in = append(in, t)
	}
	o.src = sliceSource{ctx: ctx, open: true, tuples: pier.Collect(pier.GroupBy(pier.NewSliceIter(in), o.KeyCols, o.Aggs))}
	return nil
}

// Next implements Operator.
func (o *GroupBy) Next() (pier.Tuple, error) { return o.src.next() }

// Close implements Operator.
func (o *GroupBy) Close() error {
	o.src.close() //nolint:errcheck // always nil
	return o.Input.Close()
}

// Stats implements Operator.
func (o *GroupBy) Stats() OpStats { return o.src.stats }

// Inputs implements InputsOperator.
func (o *GroupBy) Inputs() []Operator { return []Operator{o.Input} }
