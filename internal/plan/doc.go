// Package plan is PIER's composable query-plan layer: pull-based dataflow
// operators over the DHT engine, and a planner that compiles conjunctive
// keyword queries into operator trees. It replaces the monolithic
// ChainJoin/CacheSelect entrypoints as the way queries are assembled —
// those engine methods remain as the distributed primitives the operators
// wrap.
//
// # The Operator contract
//
// An Operator is a Volcano-style iterator with a context:
//
//	Open(ctx) error     — acquire resources, run per-plan setup
//	Next() (Tuple, error) — produce the next tuple
//	Close() error       — release resources
//	Stats() OpStats     — cost accrued so far, this operator only
//
// Ordering. Callers must call Open exactly once before the first Next,
// and Close exactly once when done (including after errors and early
// termination). Operators with inputs open, advance and close their
// inputs themselves: driving the root drives the tree. Next before a
// successful Open returns ErrNotOpen. Close is idempotent and legal in
// any state; after Close, Next returns ErrNotOpen.
//
// Errors. Next returns ErrDone when the stream is exhausted, and keeps
// returning it. Any other error is an execution failure; the stream is
// then dead, and the only legal next call is Close. Failures caused by
// the context — cancellation or deadline — are tagged so that both
// errors.Is(err, ErrCanceled) and errors.Is(err, context.Canceled) (or
// DeadlineExceeded) hold. Errors never carry partial tuples: a Next that
// errors returns a nil tuple.
//
// Context. The ctx given to Open governs the whole iteration: every DHT
// operation an operator issues, at Open time (ChainJoin dispatches the
// whole distributed join during Open) or during Next (DHTFetch resolves
// items in batches as the consumer pulls), is issued under that ctx.
// Canceling it makes in-flight RPCs abort and subsequent Next calls fail
// with an ErrCanceled-tagged error. Work already forwarded to remote
// nodes is not chased down; its eventual results are dropped at the
// origin.
//
// Early termination is the pull contract's reward: a consumer that stops
// calling Next (a Limit above, a streaming caller that has enough
// results) stops all upstream work. DHTFetch in particular fetches in
// batches of its worker bound, so abandoning a stream wastes at most one
// batch of item lookups.
//
// Stats are per-operator; TotalStats(root) walks the tree (via Inputs)
// and sums the origin-observed network cost of the whole plan.
//
// # Composing plans
//
// Planner.Plan compiles a Query against a Catalog (which relations hold
// postings, cached fulltext, and items) into the paper's two plan shapes;
// see Plan's doc comment for the trees. Operators compose freely outside
// the planner too — Filter and GroupBy adapt the engine's local
// relational machinery (pier.Select predicates, pier.GroupBy aggregation)
// into trees, which is the substrate planned work on top-k streaming and
// pluggable super-peer routing builds on.
package plan
