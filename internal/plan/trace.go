package plan

import (
	"context"
	"fmt"
	"strconv"

	"piersearch/internal/telemetry"
)

// EmitSpans records one span per operator in the tree rooted at op,
// wrapping the Stats() contract: each span carries the operator's
// Describe line (when available) and its accrued per-operator costs as
// attributes, with span parentage mirroring the tree. Call it after
// execution finishes (the spans are cost records; the surrounding
// query span carries the timing). A ctx without a trace makes this a
// no-op, so untraced queries pay one context lookup.
func EmitSpans(ctx context.Context, op Operator) {
	tr, trace, parent, ok := telemetry.FromContext(ctx)
	if !ok || op == nil {
		return
	}
	emitOp(tr, trace, parent, op)
}

func emitOp(tr *telemetry.Tracer, trace telemetry.TraceID, parent telemetry.SpanID, op Operator) {
	sp := tr.StartHandler(trace, parent, opName(op))
	s := op.Stats()
	sp.SetAttr("tuples", strconv.Itoa(s.Tuples))
	if s.Messages > 0 {
		sp.SetAttr("msgs", strconv.Itoa(s.Messages))
	}
	if s.Bytes > 0 {
		sp.SetAttr("bytes", strconv.Itoa(s.Bytes))
	}
	if s.Hops > 0 {
		sp.SetAttr("hops", strconv.Itoa(s.Hops))
	}
	if s.PostingShipped > 0 {
		sp.SetAttr("postings", strconv.Itoa(s.PostingShipped))
	}
	if s.MaxInFlight > 0 {
		sp.SetAttr("inflight", strconv.Itoa(s.MaxInFlight))
	}
	id := sp.ID()
	sp.Finish()
	if t, ok := op.(InputsOperator); ok {
		for _, c := range t.Inputs() {
			if c != nil {
				emitOp(tr, trace, id, c)
			}
		}
	}
}

// opName labels an operator span: the Describe line when the operator
// has one, its dynamic type otherwise.
func opName(op Operator) string {
	if d, ok := op.(Describer); ok {
		return d.Describe()
	}
	return fmt.Sprintf("%T", op)
}
