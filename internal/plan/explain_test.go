package plan_test

import (
	"context"
	"strings"
	"testing"

	"piersearch/internal/dht"
	"piersearch/internal/pier"
	"piersearch/internal/piersearch"
	"piersearch/internal/plan"
)

func newExplainEnv(t *testing.T) *pier.Engine {
	t.Helper()
	cluster, err := dht.NewCluster(8, 1, dht.Config{K: 8})
	if err != nil {
		t.Fatal(err)
	}
	engines := make([]*pier.Engine, len(cluster.Nodes))
	for i, node := range cluster.Nodes {
		engines[i] = pier.NewEngine(node, pier.Config{OrderBySelectivity: true})
		piersearch.RegisterSchemas(engines[i])
	}
	pub := piersearch.NewPublisher(engines[1], piersearch.ModeBoth, piersearch.Tokenizer{})
	for _, name := range []string{"alpha beta one.mp3", "alpha beta two.mp3", "alpha gamma.mp3"} {
		if _, err := pub.PublishFile(piersearch.File{Name: name, Size: 100, Host: "10.0.0.9", Port: 6346}); err != nil {
			t.Fatal(err)
		}
	}
	return engines[0]
}

func TestExplainRendersPlanShape(t *testing.T) {
	engine := newExplainEnv(t)
	planner := plan.Planner{Engine: engine, Catalog: piersearch.Catalog()}

	compiled, err := planner.Plan(plan.Query{
		Terms:    []string{"alpha", "beta"},
		Strategy: plan.StrategyJoin,
		Limit:    50,
	})
	if err != nil {
		t.Fatal(err)
	}
	out := compiled.Explain()
	for _, want := range []string{
		"Limit(n=50)",
		"DHTFetch(Item",
		"ChainJoin(Inverted, keys=[alpha beta], joinCol=fileID, limit=50, concurrent)",
		"└─ ", // tree drawing
	} {
		if !strings.Contains(out, want) {
			t.Errorf("explain output missing %q:\n%s", want, out)
		}
	}
	// Unexecuted: every operator reports zero tuples.
	if strings.Count(out, "tuples=0") != 3 {
		t.Errorf("unexecuted plan should show tuples=0 on all 3 operators:\n%s", out)
	}

	cachePlan, err := planner.Plan(plan.Query{Terms: []string{"alpha", "beta"}, Strategy: plan.StrategyCache})
	if err != nil {
		t.Fatal(err)
	}
	cacheOut := cachePlan.Explain()
	for _, want := range []string{"Distinct", "Project(cols=[", "CacheSelect(InvertedCache, key=alpha, filters=[beta]"} {
		if !strings.Contains(cacheOut, want) {
			t.Errorf("cache explain missing %q:\n%s", want, cacheOut)
		}
	}
}

func TestExplainAfterExecutionShowsStats(t *testing.T) {
	engine := newExplainEnv(t)
	planner := plan.Planner{Engine: engine, Catalog: piersearch.Catalog()}
	compiled, err := planner.Plan(plan.Query{Terms: []string{"alpha", "beta"}, Strategy: plan.StrategyJoin})
	if err != nil {
		t.Fatal(err)
	}
	tuples, err := compiled.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(tuples) != 2 {
		t.Fatalf("%d tuples, want 2", len(tuples))
	}
	out := compiled.Explain()
	if !strings.Contains(out, "Limit(n=0) [tuples=2]") {
		t.Errorf("executed root should report 2 tuples:\n%s", out)
	}
	if !strings.Contains(out, "msgs=") || !strings.Contains(out, "bytes=") {
		t.Errorf("executed plan should report traffic:\n%s", out)
	}
}
