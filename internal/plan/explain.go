package plan

import (
	"fmt"
	"strings"
)

// Describer is implemented by operators that can render themselves for
// Explain; operators without it fall back to their Go type name.
type Describer interface {
	// Describe returns a one-line rendering of the operator and its
	// parameters, e.g. `ChainJoin(Inverted, keys=[madonna prayer], limit=50)`.
	Describe() string
}

// Explain renders the operator tree rooted at op as an indented
// pretty-printed plan, one operator per line, each annotated with the
// stats it has accrued so far. Called on a freshly compiled plan it shows
// the shape the planner chose; called after execution it is a per-operator
// cost profile:
//
//	Limit(n=50) [tuples=12]
//	└─ DHTFetch(Item, workers=8) [tuples=12 msgs=40 bytes=18.2KB maxInFlight=8]
//	   └─ ChainJoin(Inverted, keys=[madonna prayer], limit=50) [tuples=12 msgs=31 bytes=2.1KB hops=14 postings=57]
func Explain(op Operator) string {
	var b strings.Builder
	explain(&b, op, "", "")
	return strings.TrimRight(b.String(), "\n")
}

func explain(b *strings.Builder, op Operator, prefix, childPrefix string) {
	b.WriteString(prefix)
	b.WriteString(describe(op))
	b.WriteString(" ")
	b.WriteString(formatStats(op.Stats()))
	b.WriteString("\n")
	var inputs []Operator
	if t, ok := op.(InputsOperator); ok {
		inputs = t.Inputs()
	}
	for i, c := range inputs {
		if c == nil {
			continue
		}
		if i == len(inputs)-1 {
			explain(b, c, childPrefix+"└─ ", childPrefix+"   ")
		} else {
			explain(b, c, childPrefix+"├─ ", childPrefix+"│  ")
		}
	}
}

// describe renders one operator's head line.
func describe(op Operator) string {
	if d, ok := op.(Describer); ok {
		return d.Describe()
	}
	name := fmt.Sprintf("%T", op)
	name = strings.TrimPrefix(name, "*")
	if i := strings.LastIndexByte(name, '.'); i >= 0 {
		name = name[i+1:]
	}
	return name
}

// formatStats renders an operator's accrued stats, eliding zero fields so
// an unexecuted plan reads as pure shape.
func formatStats(s OpStats) string {
	parts := []string{fmt.Sprintf("tuples=%d", s.Tuples)}
	if s.Messages > 0 {
		parts = append(parts, fmt.Sprintf("msgs=%d", s.Messages))
	}
	if s.Bytes > 0 {
		parts = append(parts, "bytes="+formatBytes(s.Bytes))
	}
	if s.Hops > 0 {
		parts = append(parts, fmt.Sprintf("hops=%d", s.Hops))
	}
	if s.PostingShipped > 0 {
		parts = append(parts, fmt.Sprintf("postings=%d", s.PostingShipped))
	}
	if s.MaxInFlight > 0 {
		parts = append(parts, fmt.Sprintf("maxInFlight=%d", s.MaxInFlight))
	}
	if s.CacheHits > 0 {
		parts = append(parts, fmt.Sprintf("cacheHits=%d", s.CacheHits))
	}
	if s.Coalesced > 0 {
		parts = append(parts, fmt.Sprintf("coalesced=%d", s.Coalesced))
	}
	if s.FanoutReads > 0 {
		parts = append(parts, fmt.Sprintf("fanout=%d", s.FanoutReads))
	}
	return "[" + strings.Join(parts, " ") + "]"
}

func formatBytes(n int) string {
	if n < 1024 {
		return fmt.Sprintf("%dB", n)
	}
	return fmt.Sprintf("%.1fKB", float64(n)/1024)
}

// Explain renders the compiled plan's tree; see the package-level Explain.
func (p *CompiledPlan) Explain() string { return Explain(p.Root) }

// --- per-operator descriptions ----------------------------------------------

// Describe implements Describer.
func (o *LocalScan) Describe() string {
	return fmt.Sprintf("LocalScan(%s, key=%s)", o.Table, o.Key.Text())
}

// Describe implements Describer.
func (o *ChainJoin) Describe() string {
	keys := make([]string, len(o.Keys))
	for i, k := range o.Keys {
		keys[i] = k.Text()
	}
	mode := "concurrent"
	if o.Sequential {
		mode = "sequential"
	}
	return fmt.Sprintf("ChainJoin(%s, keys=[%s], joinCol=%s, limit=%d, %s)",
		o.Table, strings.Join(keys, " "), o.JoinCol, o.Limit, mode)
}

// Describe implements Describer.
func (o *CacheSelect) Describe() string {
	return fmt.Sprintf("CacheSelect(%s, key=%s, filters=[%s], limit=%d)",
		o.Table, o.Key.Text(), strings.Join(o.Filters, " "), o.Limit)
}

// Describe implements Describer.
func (o *DHTFetch) Describe() string {
	return fmt.Sprintf("DHTFetch(%s, keyCol=%d, workers=%d)", o.Table, o.KeyCol, o.Workers)
}

// Describe implements Describer.
func (o *Filter) Describe() string { return "Filter" }

// Describe implements Describer.
func (o *Limit) Describe() string { return fmt.Sprintf("Limit(n=%d)", o.N) }

// Describe implements Describer.
func (o *Project) Describe() string {
	cols := make([]string, len(o.Cols))
	for i, c := range o.Cols {
		cols[i] = fmt.Sprint(c)
	}
	return fmt.Sprintf("Project(cols=[%s])", strings.Join(cols, " "))
}

// Describe implements Describer.
func (o *Distinct) Describe() string {
	if len(o.Cols) == 0 {
		return "Distinct"
	}
	cols := make([]string, len(o.Cols))
	for i, c := range o.Cols {
		cols[i] = fmt.Sprint(c)
	}
	return fmt.Sprintf("Distinct(cols=[%s])", strings.Join(cols, " "))
}

// Describe implements Describer.
func (o *GroupBy) Describe() string {
	return fmt.Sprintf("GroupBy(keyCols=%v, aggs=%d)", o.KeyCols, len(o.Aggs))
}
