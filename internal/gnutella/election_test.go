package gnutella

import (
	"strings"
	"testing"
	"time"
)

func capableCap() Capability {
	return Capability{
		UptimeMinutes:    120,
		DownstreamKbps:   512,
		UpstreamKbps:     128,
		AcceptedIncoming: true,
		ModernOS:         true,
	}
}

func TestUltrapeerCapable(t *testing.T) {
	if !capableCap().UltrapeerCapable() {
		t.Error("fully capable node not capable")
	}
	cases := []func(*Capability){
		func(c *Capability) { c.UptimeMinutes = 5 },
		func(c *Capability) { c.DownstreamKbps = 30 },
		func(c *Capability) { c.UpstreamKbps = 10 },
		func(c *Capability) { c.AcceptedIncoming = false },
		func(c *Capability) { c.ModernOS = false },
	}
	for i, mutate := range cases {
		c := capableCap()
		mutate(&c)
		if c.UltrapeerCapable() {
			t.Errorf("case %d: deficient node reported capable", i)
		}
	}
}

func TestHandshakeRoundTrip(t *testing.T) {
	h := NewHandshake(capableCap(), true)
	wire := h.Encode()
	if !strings.HasPrefix(wire, "GNUTELLA CONNECT/0.6\r\n") {
		t.Fatalf("wire form: %q", wire)
	}
	got, err := ParseHandshake(wire)
	if err != nil {
		t.Fatal(err)
	}
	if !got.IsUltrapeer() || !got.UltrapeerCapable() {
		t.Errorf("parsed headers: %v", got.Headers)
	}
	leaf := NewHandshake(Capability{}, false)
	got, err = ParseHandshake(leaf.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.IsUltrapeer() || got.UltrapeerCapable() {
		t.Errorf("leaf handshake parsed as ultrapeer: %v", got.Headers)
	}
}

func TestParseHandshakeErrors(t *testing.T) {
	if _, err := ParseHandshake("HTTP/1.1 200 OK\r\n\r\n"); err == nil {
		t.Error("non-gnutella handshake accepted")
	}
	if _, err := ParseHandshake("GNUTELLA CONNECT/0.6\r\nbroken header\r\n\r\n"); err == nil {
		t.Error("malformed header accepted")
	}
}

func TestLeafGuidance(t *testing.T) {
	if LeafGuidance(true)["X-Ultrapeer-Needed"] != "False" {
		t.Error("spare capacity should demote the connecting node")
	}
	if LeafGuidance(false)["X-Ultrapeer-Needed"] != "True" {
		t.Error("full ultrapeer should promote the connecting node")
	}
}

func TestElectQuotaAndPreference(t *testing.T) {
	caps := make([]Capability, 100)
	for i := range caps {
		caps[i] = capableCap()
		caps[i].UptimeMinutes = i // later nodes are longer-lived
	}
	// A third are not capable at all.
	for i := 0; i < 33; i++ {
		caps[i].AcceptedIncoming = false
	}
	elected := Elect(caps, 30)
	want := 100 / 31
	if len(elected) != want {
		t.Fatalf("elected %d, want %d", len(elected), want)
	}
	// Preference: the highest-uptime capable nodes win.
	for _, idx := range elected {
		if caps[idx].UptimeMinutes < 90 {
			t.Errorf("low-uptime node %d elected over higher-uptime peers", idx)
		}
		if !caps[idx].UltrapeerCapable() {
			t.Errorf("incapable node %d elected", idx)
		}
	}
}

func TestElectFewCapable(t *testing.T) {
	caps := make([]Capability, 50)
	caps[7] = capableCap()
	elected := Elect(caps, 30)
	if len(elected) != 1 || elected[0] != 7 {
		t.Errorf("elected = %v, want just node 7", elected)
	}
}

func TestChurnDetachedUltrapeerStopsAnswering(t *testing.T) {
	topo := smallTopo(t)
	target := topo.UPAdj[0][0]
	lib := libWith(t, topo, map[HostID][]string{target: {"solo item.mp3"}})
	net := NewNetwork(topo, lib, NetworkConfig{DynamicQuery: false, MaxTTL: 3, Seed: 4})
	net.DetachUltrapeer(target)
	if net.Alive(target) {
		t.Fatal("detached ultrapeer still alive")
	}
	q := net.Query(0, []string{"solo", "item"})
	net.Sim.Run()
	if len(q.Results) != 0 {
		t.Errorf("detached ultrapeer answered %d results", len(q.Results))
	}
	// Rejoin: the item becomes findable again.
	net.AttachUltrapeer(target)
	q2 := net.Query(0, []string{"solo", "item"})
	net.Sim.Run()
	if len(q2.Results) != 1 {
		t.Errorf("after rejoin: %d results, want 1", len(q2.Results))
	}
}

func TestChurnFloodingRoutesAroundFailure(t *testing.T) {
	topo := smallTopo(t)
	// Place the file at depth 2 and kill one depth-1 node; redundant paths
	// should still deliver the query.
	depth := BFSDepths(topo, 0)
	var far HostID = -1
	for u, d := range depth {
		if d == 2 {
			far = u
			break
		}
	}
	if far == -1 {
		t.Skip("no depth-2 ultrapeer")
	}
	lib := libWith(t, topo, map[HostID][]string{far: {"resilient file.mp3"}})
	net := NewNetwork(topo, lib, NetworkConfig{DynamicQuery: false, MaxTTL: 4, Seed: 4})
	net.DetachUltrapeer(topo.UPAdj[0][0])
	q := net.Query(0, []string{"resilient", "file"})
	net.Sim.Run()
	if len(q.Results) != 1 {
		t.Errorf("flood failed to route around a dead neighbour: %d results", len(q.Results))
	}
}

func TestBrowseHost(t *testing.T) {
	topo := smallTopo(t)
	leaf := 200
	lib := libWith(t, topo, map[HostID][]string{leaf: {"shared a.mp3", "shared b.mp3"}})
	net := NewNetwork(topo, lib, NetworkConfig{Seed: 4})
	var got []SharedFile
	net.BrowseHost(0, leaf, func(files []SharedFile) { got = files })
	net.Sim.Run()
	if len(got) != 2 {
		t.Fatalf("BrowseHost returned %d files", len(got))
	}
	// Browsing an empty host returns an empty (but delivered) list.
	delivered := false
	net.BrowseHost(0, 201, func(files []SharedFile) { delivered = true; got = files })
	net.Sim.Run()
	if !delivered || len(got) != 0 {
		t.Errorf("empty BrowseHost: delivered=%v files=%d", delivered, len(got))
	}
}

func TestBrowseHostLocalSubtree(t *testing.T) {
	topo := smallTopo(t)
	u := topo.UltrapeerOf(200)
	lib := libWith(t, topo, map[HostID][]string{200: {"local file.mp3"}})
	net := NewNetwork(topo, lib, NetworkConfig{Seed: 4})
	var got []SharedFile
	net.BrowseHost(u, 200, func(files []SharedFile) { got = files })
	net.Sim.Run()
	if len(got) != 1 {
		t.Errorf("local BrowseHost returned %d files", len(got))
	}
}

func TestPingPong(t *testing.T) {
	topo := smallTopo(t)
	lib := libWith(t, topo, nil)
	net := NewNetwork(topo, lib, NetworkConfig{Seed: 4})
	var rtt time.Duration
	net.PingPong(0, topo.UPAdj[0][0], func(d time.Duration) { rtt = d })
	net.Sim.Run()
	// Two one-way hops of 1.25-2.25s each.
	if rtt < 2500*time.Millisecond || rtt > 4500*time.Millisecond {
		t.Errorf("RTT = %v, want 2.5-4.5s", rtt)
	}
}
