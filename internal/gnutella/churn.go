package gnutella

import (
	"time"

	"piersearch/internal/simnet"
)

// This file adds churn and the BrowseHost API to the event-driven overlay.

// browseMsg asks an ultrapeer for the file list of one of its hosts; the
// reply carries the list back (the BrowseHost API the hybrid client uses
// to gather leaf file information, §7).
type browseMsg struct {
	Target  HostID
	ReplyTo HostID
	Seq     uint64
}

type browseReply struct {
	Seq   uint64
	Files []SharedFile
}

// DetachUltrapeer removes an ultrapeer from the overlay mid-run: queries
// in flight toward it are dropped by the network, and it no longer
// forwards or answers. Its leaves go dark with it (they publish their
// file lists only to their ultrapeer).
func (n *Network) DetachUltrapeer(u HostID) {
	n.net.Detach(simnet.NodeID(u))
}

// AttachUltrapeer re-attaches a previously detached ultrapeer (a rejoin;
// its protocol state survives, as LimeWire keeps its library on restart).
func (n *Network) AttachUltrapeer(u HostID) {
	st := n.ups[u]
	n.net.Attach(simnet.NodeID(u), func(m simnet.Message) { n.deliver(st, m) })
}

// Alive reports whether an ultrapeer is currently attached.
func (n *Network) Alive(u HostID) bool { return n.net.Attached(simnet.NodeID(u)) }

// BrowseHost requests target's file list via its ultrapeer, calling cb
// with the list when the reply arrives (or never, if the ultrapeer is
// detached). It returns immediately; run the simulator to make progress.
func (n *Network) BrowseHost(from HostID, target HostID, cb func([]SharedFile)) {
	n.nextGUID++
	seq := n.nextGUID
	n.browseWaiters[seq] = cb
	fromUP := n.topo.UltrapeerOf(from)
	targetUP := n.topo.UltrapeerOf(target)
	msg := browseMsg{Target: target, ReplyTo: fromUP, Seq: seq}
	if fromUP == targetUP {
		// Local: still schedule through the clock for uniform latency.
		n.Sim.After(0, func() { n.handleBrowse(n.ups[targetUP], msg) })
		return
	}
	n.net.Send(simnet.Message{
		From: simnet.NodeID(fromUP), To: simnet.NodeID(targetUP),
		Kind: "browse", Payload: msg, Size: 40,
	})
}

func (n *Network) handleBrowse(st *upState, msg browseMsg) {
	files := n.lib.Files(msg.Target)
	reply := browseReply{Seq: msg.Seq, Files: files}
	if msg.ReplyTo == st.id {
		n.deliverBrowseReply(reply)
		return
	}
	n.net.Send(simnet.Message{
		From: simnet.NodeID(st.id), To: simnet.NodeID(msg.ReplyTo),
		Kind: "browse-reply", Payload: reply, Size: 40 + len(files)*60,
	})
}

func (n *Network) deliverBrowseReply(reply browseReply) {
	cb := n.browseWaiters[reply.Seq]
	if cb == nil {
		return
	}
	delete(n.browseWaiters, reply.Seq)
	cb(reply.Files)
}

// PingPong measures the round-trip time to a neighbouring ultrapeer using
// the overlay's Ping/Pong descriptors, calling cb with the RTT.
func (n *Network) PingPong(from, to HostID, cb func(rtt time.Duration)) {
	start := n.Sim.Now()
	n.nextGUID++
	seq := n.nextGUID
	n.pongWaiters[seq] = func() { cb(n.Sim.Now() - start) }
	n.net.Send(simnet.Message{
		From: simnet.NodeID(from), To: simnet.NodeID(to),
		Kind: "ping", Payload: pingMsg{Seq: seq, ReplyTo: from}, Size: 23,
	})
}

type pingMsg struct {
	Seq     uint64
	ReplyTo HostID
}

type pongMsg struct{ Seq uint64 }
