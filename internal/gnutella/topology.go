// Package gnutella simulates the Gnutella 0.6 unstructured overlay the
// paper measures in §4: a two-tier topology of ultrapeers and leaves, TTL-
// scoped flooding with duplicate suppression, dynamic querying (iterative
// deepening), reverse-path query-hit routing, QRP Bloom filters from leaves
// to ultrapeers, the BrowseHost API, and the neighbour-list crawler API the
// paper's distributed crawl used.
//
// Two execution modes cover the paper's experiments:
//
//   - Study mode (study.go): analytic BFS over the topology — reach sets,
//     flood message counts, first-match depths. This is how Figures 4–8 are
//     computed at 100k-host scale without event-level simulation.
//   - Event mode (network.go): discrete-event flooding on internal/sim with
//     per-hop forwarding delays, used by the deployment experiments and to
//     validate the analytic mode.
package gnutella

import (
	"fmt"
	"math/rand"
)

// HostID identifies a host. Ultrapeers are 0..Ultrapeers-1; leaves follow.
type HostID = int

// TopologyConfig describes the overlay shape. The defaults mirror the
// paper's crawl findings (§4.1): newer LimeWire ultrapeers keep 32
// ultrapeer neighbours and up to 30 leaves; older ones keep 6 neighbours
// and up to 75 leaves.
type TopologyConfig struct {
	Ultrapeers      int
	Hosts           int     // total hosts (ultrapeers + leaves)
	NewClientFrac   float64 // fraction of ultrapeers running the new client
	NewDegree       int     // UP neighbours for new clients (default 32)
	OldDegree       int     // UP neighbours for old clients (default 6)
	NewLeafCapacity int     // leaf slots, new client (default 30)
	OldLeafCapacity int     // leaf slots, old client (default 75)
	Seed            int64
}

// Normalize fills defaults and returns the config.
func (c TopologyConfig) Normalize() TopologyConfig {
	if c.Ultrapeers <= 0 {
		c.Ultrapeers = 1000
	}
	if c.Hosts <= c.Ultrapeers {
		c.Hosts = c.Ultrapeers * 5
	}
	if c.NewDegree <= 0 {
		c.NewDegree = 32
	}
	if c.OldDegree <= 0 {
		c.OldDegree = 6
	}
	if c.NewLeafCapacity <= 0 {
		c.NewLeafCapacity = 30
	}
	if c.OldLeafCapacity <= 0 {
		c.OldLeafCapacity = 75
	}
	if c.NewClientFrac < 0 || c.NewClientFrac > 1 {
		c.NewClientFrac = 0.1
	}
	return c
}

// Topology is a generated overlay graph.
type Topology struct {
	Cfg      TopologyConfig
	UPAdj    [][]HostID // ultrapeer adjacency lists
	IsNew    []bool     // per-ultrapeer client generation
	LeafUP   []HostID   // for leaf hosts: owning ultrapeer (index by host-Ultrapeers)
	UPLeaves [][]HostID // per-ultrapeer attached leaves
}

// NewTopology generates a topology: each ultrapeer requests its degree in
// random peers (undirected, deduplicated) and leaves attach to random
// ultrapeers with free capacity.
func NewTopology(cfg TopologyConfig) (*Topology, error) {
	cfg = cfg.Normalize()
	if cfg.Ultrapeers < 2 {
		return nil, fmt.Errorf("gnutella: need at least 2 ultrapeers")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	t := &Topology{
		Cfg:      cfg,
		UPAdj:    make([][]HostID, cfg.Ultrapeers),
		IsNew:    make([]bool, cfg.Ultrapeers),
		UPLeaves: make([][]HostID, cfg.Ultrapeers),
	}
	for u := range t.IsNew {
		t.IsNew[u] = rng.Float64() < cfg.NewClientFrac
	}

	// Ultrapeer graph: degree-targeted random matching. Each node draws
	// until it has ~degree distinct neighbours; edges are mutual.
	adjSet := make([]map[HostID]bool, cfg.Ultrapeers)
	for u := range adjSet {
		adjSet[u] = make(map[HostID]bool)
	}
	degree := func(u HostID) int {
		if t.IsNew[u] {
			return cfg.NewDegree
		}
		return cfg.OldDegree
	}
	addEdge := func(u, v HostID) {
		adjSet[u][v] = true
		adjSet[v][u] = true
		t.UPAdj[u] = append(t.UPAdj[u], v)
		t.UPAdj[v] = append(t.UPAdj[v], u)
	}
	for u := 0; u < cfg.Ultrapeers; u++ {
		want := degree(u)
		for attempts := 0; len(adjSet[u]) < want && attempts < want*8; attempts++ {
			v := rng.Intn(cfg.Ultrapeers)
			if v == u || adjSet[u][v] {
				continue
			}
			// Respect the peer's own target loosely (2x slack), keeping
			// the graph close to the configured degrees.
			if len(adjSet[v]) >= degree(v)*2 {
				continue
			}
			addEdge(u, v)
		}
	}
	// Connectivity backstop: chain any isolated ultrapeers into the graph.
	for u := 1; u < cfg.Ultrapeers; u++ {
		if len(adjSet[u]) == 0 {
			addEdge(u, HostID(rng.Intn(u)))
		}
	}

	// Leaves: attach to random ultrapeers with capacity.
	leaves := cfg.Hosts - cfg.Ultrapeers
	t.LeafUP = make([]HostID, leaves)
	capacity := func(u HostID) int {
		if t.IsNew[u] {
			return cfg.NewLeafCapacity
		}
		return cfg.OldLeafCapacity
	}
	for l := 0; l < leaves; l++ {
		host := cfg.Ultrapeers + l
		for {
			u := rng.Intn(cfg.Ultrapeers)
			if len(t.UPLeaves[u]) < capacity(u) {
				t.LeafUP[l] = u
				t.UPLeaves[u] = append(t.UPLeaves[u], host)
				break
			}
		}
	}
	return t, nil
}

// NumHosts returns the total host count.
func (t *Topology) NumHosts() int { return t.Cfg.Hosts }

// NumUltrapeers returns the ultrapeer count.
func (t *Topology) NumUltrapeers() int { return t.Cfg.Ultrapeers }

// IsUltrapeer reports whether host is an ultrapeer.
func (t *Topology) IsUltrapeer(host HostID) bool { return host < t.Cfg.Ultrapeers }

// UltrapeerOf returns the ultrapeer responsible for host: itself for an
// ultrapeer, its parent for a leaf.
func (t *Topology) UltrapeerOf(host HostID) HostID {
	if t.IsUltrapeer(host) {
		return host
	}
	return t.LeafUP[host-t.Cfg.Ultrapeers]
}

// Degree returns the ultrapeer-graph degree of ultrapeer u.
func (t *Topology) Degree(u HostID) int { return len(t.UPAdj[u]) }

// AvgDegree returns the mean ultrapeer degree.
func (t *Topology) AvgDegree() float64 {
	total := 0
	for u := range t.UPAdj {
		total += len(t.UPAdj[u])
	}
	return float64(total) / float64(len(t.UPAdj))
}

// HostsOf returns the hosts an ultrapeer answers for: itself + its leaves.
func (t *Topology) HostsOf(u HostID) []HostID {
	out := make([]HostID, 0, 1+len(t.UPLeaves[u]))
	out = append(out, u)
	out = append(out, t.UPLeaves[u]...)
	return out
}
