package gnutella

import (
	"fmt"
	"testing"
	"time"

	"piersearch/internal/piersearch"
)

func smallTopo(t testing.TB) *Topology {
	t.Helper()
	topo, err := NewTopology(TopologyConfig{
		Ultrapeers: 200, Hosts: 1200, NewClientFrac: 0.2, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

func TestTopologyShape(t *testing.T) {
	topo := smallTopo(t)
	if topo.NumHosts() != 1200 || topo.NumUltrapeers() != 200 {
		t.Fatalf("hosts=%d ups=%d", topo.NumHosts(), topo.NumUltrapeers())
	}
	// Every leaf attached to a valid ultrapeer; capacity respected.
	for l, u := range topo.LeafUP {
		if u < 0 || u >= 200 {
			t.Fatalf("leaf %d attached to %d", l, u)
		}
	}
	for u, leaves := range topo.UPLeaves {
		capacity := topo.Cfg.OldLeafCapacity
		if topo.IsNew[u] {
			capacity = topo.Cfg.NewLeafCapacity
		}
		if len(leaves) > capacity {
			t.Fatalf("ultrapeer %d has %d leaves, capacity %d", u, len(leaves), capacity)
		}
	}
}

func TestTopologyAdjacencySymmetric(t *testing.T) {
	topo := smallTopo(t)
	edges := map[[2]HostID]bool{}
	for u, nbrs := range topo.UPAdj {
		for _, v := range nbrs {
			if v == u {
				t.Fatalf("self loop at %d", u)
			}
			edges[[2]HostID{u, v}] = true
		}
	}
	for e := range edges {
		if !edges[[2]HostID{e[1], e[0]}] {
			t.Fatalf("edge %v not symmetric", e)
		}
	}
}

func TestTopologyConnected(t *testing.T) {
	topo := smallTopo(t)
	depth := BFSDepths(topo, 0)
	for u, d := range depth {
		if d < 0 {
			t.Fatalf("ultrapeer %d unreachable", u)
		}
	}
}

func TestTopologyDegreesTrackClientMix(t *testing.T) {
	topo, err := NewTopology(TopologyConfig{Ultrapeers: 500, Hosts: 2000, NewClientFrac: 0.5, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	var newSum, newN, oldSum, oldN int
	for u := range topo.UPAdj {
		if topo.IsNew[u] {
			newSum += topo.Degree(u)
			newN++
		} else {
			oldSum += topo.Degree(u)
			oldN++
		}
	}
	if newN == 0 || oldN == 0 {
		t.Skip("degenerate client mix")
	}
	if float64(newSum)/float64(newN) <= float64(oldSum)/float64(oldN) {
		t.Errorf("new-client avg degree %.1f <= old-client %.1f",
			float64(newSum)/float64(newN), float64(oldSum)/float64(oldN))
	}
}

func TestUltrapeerOf(t *testing.T) {
	topo := smallTopo(t)
	if topo.UltrapeerOf(5) != 5 {
		t.Error("ultrapeer not its own responsible UP")
	}
	leafHost := 200 // first leaf
	u := topo.UltrapeerOf(leafHost)
	found := false
	for _, l := range topo.UPLeaves[u] {
		if l == leafHost {
			found = true
		}
	}
	if !found {
		t.Error("UltrapeerOf leaf inconsistent with UPLeaves")
	}
}

func TestNewTopologyErrors(t *testing.T) {
	if _, err := NewTopology(TopologyConfig{Ultrapeers: 1, Hosts: 10}); err == nil {
		t.Error("single-ultrapeer topology accepted")
	}
}

func libWith(t testing.TB, topo *Topology, files map[HostID][]string) *Library {
	t.Helper()
	lib := NewLibrary(topo, piersearch.Tokenizer{})
	for host, names := range files {
		for _, name := range names {
			lib.AddFile(host, SharedFile{Name: name, Size: 1000})
		}
	}
	return lib
}

func TestLibraryMatchAt(t *testing.T) {
	topo := smallTopo(t)
	leaf := 200
	u := topo.UltrapeerOf(leaf)
	lib := libWith(t, topo, map[HostID][]string{
		leaf: {"madonna like a prayer.mp3", "beatles help.mp3"},
		u:    {"madonna music.mp3"},
	})
	if got := lib.MatchAt(u, []string{"madonna"}); len(got) != 2 {
		t.Errorf("MatchAt(madonna) = %d refs, want 2", len(got))
	}
	if got := lib.MatchAt(u, []string{"madonna", "prayer"}); len(got) != 1 {
		t.Errorf("MatchAt(madonna prayer) = %d refs, want 1", len(got))
	}
	if got := lib.MatchAt(u, []string{"elvis"}); got != nil {
		t.Errorf("MatchAt(elvis) = %v, want none", got)
	}
	if got := lib.MatchAt(u, nil); got != nil {
		t.Errorf("MatchAt(no terms) = %v", got)
	}
	// Other ultrapeers see nothing.
	other := (u + 1) % topo.NumUltrapeers()
	if got := lib.MatchAt(other, []string{"madonna"}); got != nil {
		t.Errorf("foreign ultrapeer matched %v", got)
	}
}

func TestLibraryCountsAndBrowse(t *testing.T) {
	topo := smallTopo(t)
	lib := libWith(t, topo, map[HostID][]string{
		201: {"a b.mp3", "c d.mp3"},
		202: {"a b.mp3"},
	})
	if lib.NumFiles() != 3 {
		t.Errorf("NumFiles = %d", lib.NumFiles())
	}
	if got := lib.Files(201); len(got) != 2 {
		t.Errorf("BrowseHost(201) = %d files", len(got))
	}
	rc := lib.ReplicaCount()
	if rc["a b.mp3"] != 2 || rc["c d.mp3"] != 1 {
		t.Errorf("ReplicaCount = %v", rc)
	}
}

func TestQRPSuppressesNonMatchingLeaves(t *testing.T) {
	topo := smallTopo(t)
	leaf := 200
	u := topo.UltrapeerOf(leaf)
	lib := libWith(t, topo, map[HostID][]string{leaf: {"unique filename.mp3"}})
	bytes := lib.BuildQRP(1024, 3)
	if bytes <= 0 {
		t.Fatal("QRP build shipped no bytes")
	}
	if !lib.QRPAdmits(u, leaf, []string{"unique"}) {
		t.Error("QRP rejected a term the leaf shares (false negative)")
	}
	if lib.QRPAdmits(u, leaf, []string{"definitely-not-there-xyz"}) {
		t.Error("QRP admitted an absent term (statistically near-impossible at this size)")
	}
}

func TestBFSAndReach(t *testing.T) {
	topo := smallTopo(t)
	depth := BFSDepths(topo, 0)
	if depth[0] != 0 {
		t.Error("src depth != 0")
	}
	for _, v := range topo.UPAdj[0] {
		if depth[v] != 1 {
			t.Errorf("neighbour depth = %d", depth[v])
		}
	}
	r1 := ReachSet(topo, 0, 1)
	if len(r1) != 1+len(topo.UPAdj[0]) {
		t.Errorf("reach(1) = %d, want %d", len(r1), 1+len(topo.UPAdj[0]))
	}
	rAll := ReachSet(topo, 0, 100)
	if len(rAll) != topo.NumUltrapeers() {
		t.Errorf("reach(inf) = %d", len(rAll))
	}
}

func TestFloodCostsMonotoneAndDiminishing(t *testing.T) {
	topo, err := NewTopology(TopologyConfig{Ultrapeers: 2000, Hosts: 10000, NewClientFrac: 0.1, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	costs := FloodCosts(topo, 0, 8)
	for i := 1; i < len(costs); i++ {
		if costs[i].Messages < costs[i-1].Messages || costs[i].Visited < costs[i-1].Visited {
			t.Fatalf("flood costs not monotone: %+v -> %+v", costs[i-1], costs[i])
		}
	}
	// Diminishing returns (Figure 8): messages-per-new-node grows with TTL.
	type rate struct{ perNode float64 }
	var early, late rate
	if costs[1].Visited > costs[0].Visited {
		early.perNode = float64(costs[1].Messages-costs[0].Messages) / float64(costs[1].Visited-costs[0].Visited)
	}
	last := len(costs) - 1
	prev := last - 1
	if costs[last].Visited > costs[prev].Visited {
		late.perNode = float64(costs[last].Messages-costs[prev].Messages) / float64(costs[last].Visited-costs[prev].Visited)
		if late.perNode <= early.perNode {
			t.Errorf("no diminishing returns: early %.2f, late %.2f msgs/new node", early.perNode, late.perNode)
		}
	}
}

func TestHorizonForFraction(t *testing.T) {
	topo := smallTopo(t)
	ttl, reach := HorizonForFraction(topo, 0, 0.3)
	frac := float64(len(reach)) / float64(topo.NumUltrapeers())
	if frac < 0.3 {
		t.Errorf("horizon frac = %.2f < 0.3", frac)
	}
	if ttl <= 0 {
		t.Errorf("ttl = %d", ttl)
	}
	// Smaller fraction never needs a larger TTL.
	ttlSmall, _ := HorizonForFraction(topo, 0, 0.05)
	if ttlSmall > ttl {
		t.Errorf("ttl(5%%)=%d > ttl(30%%)=%d", ttlSmall, ttl)
	}
}

func TestFirstMatchDepth(t *testing.T) {
	topo := smallTopo(t)
	// Put the file at a known ultrapeer, measure depth from vantage 0.
	target := topo.UPAdj[0][0] // depth-1 neighbour
	lib := libWith(t, topo, map[HostID][]string{target: {"needle in haystack.mp3"}})
	if d := FirstMatchDepth(topo, lib, 0, []string{"needle"}); d != 1 {
		t.Errorf("FirstMatchDepth = %d, want 1", d)
	}
	if d := FirstMatchDepth(topo, lib, 0, []string{"absent"}); d != -1 {
		t.Errorf("FirstMatchDepth(absent) = %d, want -1", d)
	}
	if d := FirstMatchDepth(topo, lib, target, []string{"needle"}); d != 0 {
		t.Errorf("FirstMatchDepth(self) = %d, want 0", d)
	}
}

func TestEventQueryFindsNearbyFile(t *testing.T) {
	topo := smallTopo(t)
	target := topo.UPAdj[0][0]
	lib := libWith(t, topo, map[HostID][]string{target: {"rare gem demo.mp3"}})
	net := NewNetwork(topo, lib, NetworkConfig{DynamicQuery: false, MaxTTL: 3, Seed: 4})
	q := net.Query(0, []string{"rare", "gem"})
	net.Sim.Run()
	if len(q.Results) != 1 {
		t.Fatalf("results = %d, want 1", len(q.Results))
	}
	lat := q.FirstResultLatency()
	// One hop out, one hop back: 2 x [1.25s, 2.25s].
	if lat < 2500*time.Millisecond || lat > 4500*time.Millisecond {
		t.Errorf("first-result latency = %v, want ~2.5-4.5s", lat)
	}
	if q.Messages == 0 {
		t.Error("no messages recorded")
	}
}

func TestEventQueryRespectsTTLHorizon(t *testing.T) {
	topo := smallTopo(t)
	depth := BFSDepths(topo, 0)
	far := -1
	for u, d := range depth {
		if d == 4 {
			far = u
			break
		}
	}
	if far == -1 {
		t.Skip("no depth-4 ultrapeer in this topology")
	}
	lib := libWith(t, topo, map[HostID][]string{far: {"distant star.mp3"}})
	net := NewNetwork(topo, lib, NetworkConfig{DynamicQuery: false, MaxTTL: 2, Seed: 4})
	q := net.Query(0, []string{"distant"})
	net.Sim.Run()
	if len(q.Results) != 0 {
		t.Errorf("TTL-2 flood reached a depth-4 host: %d results", len(q.Results))
	}
}

func TestDynamicQueryDeepensUntilFound(t *testing.T) {
	topo := smallTopo(t)
	depth := BFSDepths(topo, 0)
	far := -1
	for u, d := range depth {
		if d == 3 {
			far = u
			break
		}
	}
	if far == -1 {
		t.Skip("no depth-3 ultrapeer")
	}
	lib := libWith(t, topo, map[HostID][]string{far: {"deep rarity.mp3"}})
	net := NewNetwork(topo, lib, NetworkConfig{DynamicQuery: true, MaxTTL: 5, Seed: 4})
	q := net.Query(0, []string{"deep", "rarity"})
	net.Sim.Run()
	if len(q.Results) != 1 {
		t.Fatalf("dynamic query found %d results", len(q.Results))
	}
	if q.Rounds < 3 {
		t.Errorf("rounds = %d, want >= 3 (deepening)", q.Rounds)
	}
	// Latency must include the inter-round waits: >= 2 rounds of waiting.
	if lat := q.FirstResultLatency(); lat < 24*time.Second {
		t.Errorf("deep rare item latency = %v, want >= 24s", lat)
	}
}

func TestDynamicQueryStopsWhenSatisfied(t *testing.T) {
	topo := smallTopo(t)
	files := map[HostID][]string{0: {}}
	// Saturate depth 0/1 with matches so round 1 satisfies the query.
	files[0] = append(files[0], "popular hit.mp3")
	for i, v := range topo.UPAdj[0] {
		files[v] = []string{fmt.Sprintf("popular hit copy%d.mp3", i)}
	}
	lib := libWith(t, topo, files)
	net := NewNetwork(topo, lib, NetworkConfig{DynamicQuery: true, MaxTTL: 5, DesiredResults: 3, Seed: 4})
	q := net.Query(0, []string{"popular", "hit"})
	net.Sim.Run()
	if q.Rounds != 1 {
		t.Errorf("rounds = %d, want 1 (satisfied early)", q.Rounds)
	}
	if len(q.Results) < 3 {
		t.Errorf("results = %d", len(q.Results))
	}
}

func TestPopularFasterThanRare(t *testing.T) {
	// The §4.2 contrast: popular items answer in seconds, rare items in
	// tens of seconds under dynamic querying.
	topo := smallTopo(t)
	depth := BFSDepths(topo, 0)
	far := -1
	for u, d := range depth {
		if d >= 4 {
			far = u
			break
		}
	}
	if far == -1 {
		t.Skip("no deep ultrapeer")
	}
	files := map[HostID][]string{far: {"obscure bside.mp3"}}
	for _, v := range topo.UPAdj[0] {
		files[v] = append(files[v], "popular anthem.mp3")
	}
	lib := libWith(t, topo, files)
	net := NewNetwork(topo, lib, NetworkConfig{DynamicQuery: true, Seed: 4})

	popular := net.Query(0, []string{"popular", "anthem"})
	rare := net.Query(0, []string{"obscure", "bside"})
	net.Sim.Run()

	pl, rl := popular.FirstResultLatency(), rare.FirstResultLatency()
	if pl < 0 || rl < 0 {
		t.Fatalf("latencies: popular %v rare %v", pl, rl)
	}
	if pl >= rl {
		t.Errorf("popular %v not faster than rare %v", pl, rl)
	}
	if rl < 30*time.Second {
		t.Errorf("rare latency %v, want tens of seconds", rl)
	}
}

func TestCrawl(t *testing.T) {
	topo := smallTopo(t)
	res := Crawl(topo, CrawlConfig{Seeds: []HostID{0, 50, 100}, RespondProb: 1, Seed: 9})
	if res.UltrapeersSeen != topo.NumUltrapeers() {
		t.Errorf("crawl saw %d ultrapeers, want %d", res.UltrapeersSeen, topo.NumUltrapeers())
	}
	if res.LeavesSeen != topo.NumHosts()-topo.NumUltrapeers() {
		t.Errorf("crawl saw %d leaves, want %d", res.LeavesSeen, topo.NumHosts()-topo.NumUltrapeers())
	}
	if res.EstimatedDuration <= 0 {
		t.Error("no duration estimate")
	}
}

func TestCrawlPartialResponseIsLowerBound(t *testing.T) {
	topo := smallTopo(t)
	full := Crawl(topo, CrawlConfig{Seeds: []HostID{0}, RespondProb: 1, Seed: 9})
	partial := Crawl(topo, CrawlConfig{Seeds: []HostID{0}, RespondProb: 0.5, Seed: 9})
	if partial.HostsSeen() > full.HostsSeen() {
		t.Errorf("partial crawl saw more hosts (%d) than full (%d)", partial.HostsSeen(), full.HostsSeen())
	}
	if partial.UltrapeersResponded >= full.UltrapeersResponded {
		t.Errorf("partial crawl responses %d >= full %d", partial.UltrapeersResponded, full.UltrapeersResponded)
	}
}

func BenchmarkFloodCosts(b *testing.B) {
	topo, err := NewTopology(TopologyConfig{Ultrapeers: 5000, Hosts: 25000, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FloodCosts(topo, i%5000, 8)
	}
}

func BenchmarkEventQuery(b *testing.B) {
	topo, err := NewTopology(TopologyConfig{Ultrapeers: 300, Hosts: 1500, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	lib := NewLibrary(topo, piersearch.Tokenizer{})
	for h := 0; h < topo.NumHosts(); h++ {
		lib.AddFile(h, SharedFile{Name: fmt.Sprintf("artist%d track%d.mp3", h%40, h), Size: 1})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net := NewNetwork(topo, lib, NetworkConfig{DynamicQuery: false, MaxTTL: 3, Seed: int64(i)})
		q := net.Query(i%300, []string{fmt.Sprintf("artist%d", i%40)})
		net.Sim.Run()
		_ = q.Results
	}
}
