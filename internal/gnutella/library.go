package gnutella

import (
	"piersearch/internal/bloom"
	"piersearch/internal/piersearch"
)

// SharedFile is one file advertised by a host.
type SharedFile struct {
	Name string
	Size int64
}

// FileRef locates one shared file.
type FileRef struct {
	Host HostID
	Idx  int // index into the host's file list
}

// Library holds every host's shared files plus the per-ultrapeer keyword
// indexes ultrapeers use to answer queries on behalf of their leaves
// (today's Gnutella: leaves publish their file lists to their ultrapeers).
type Library struct {
	topo      *Topology
	tokenizer piersearch.Tokenizer
	files     [][]SharedFile             // per host
	upIndex   []map[string][]FileRef     // per ultrapeer: term -> refs in its subtree
	qrp       []map[HostID]*bloom.Filter // optional per-UP leaf Bloom filters
}

// NewLibrary creates an empty library over topo.
func NewLibrary(topo *Topology, tk piersearch.Tokenizer) *Library {
	lib := &Library{
		topo:      topo,
		tokenizer: tk,
		files:     make([][]SharedFile, topo.NumHosts()),
		upIndex:   make([]map[string][]FileRef, topo.NumUltrapeers()),
	}
	for u := range lib.upIndex {
		lib.upIndex[u] = make(map[string][]FileRef)
	}
	return lib
}

// AddFile shares f from host, updating the responsible ultrapeer's index.
func (l *Library) AddFile(host HostID, f SharedFile) FileRef {
	ref := FileRef{Host: host, Idx: len(l.files[host])}
	l.files[host] = append(l.files[host], f)
	u := l.topo.UltrapeerOf(host)
	for _, term := range l.tokenizer.Tokenize(f.Name) {
		l.upIndex[u][term] = append(l.upIndex[u][term], ref)
	}
	return ref
}

// File resolves a reference.
func (l *Library) File(ref FileRef) SharedFile { return l.files[ref.Host][ref.Idx] }

// Files returns the files shared by host (the BrowseHost view).
func (l *Library) Files(host HostID) []SharedFile { return l.files[host] }

// NumFiles returns the total number of shared file instances.
func (l *Library) NumFiles() int {
	n := 0
	for _, fs := range l.files {
		n += len(fs)
	}
	return n
}

// MatchAt returns the files in ultrapeer u's subtree matching every query
// term, the work one ultrapeer does when a query arrives.
func (l *Library) MatchAt(u HostID, terms []string) []FileRef {
	if len(terms) == 0 {
		return nil
	}
	// Probe the rarest term first, then verify the rest per candidate.
	best := 0
	for i, term := range terms {
		n := len(l.upIndex[u][term])
		if n == 0 {
			return nil
		}
		if n < len(l.upIndex[u][terms[best]]) {
			best = i
		}
	}
	candidates := l.upIndex[u][terms[best]]
	var out []FileRef
	for _, ref := range candidates {
		if l.matches(ref, terms) {
			out = append(out, ref)
		}
	}
	return out
}

func (l *Library) matches(ref FileRef, terms []string) bool {
	name := l.File(ref).Name
	tokens := l.tokenizer.Tokenize(name)
	set := make(map[string]bool, len(tokens))
	for _, t := range tokens {
		set[t] = true
	}
	for _, term := range terms {
		if !set[term] {
			return false
		}
	}
	return true
}

// BuildQRP builds per-leaf keyword Bloom filters and returns the total
// bytes leaves would ship to their ultrapeers — the Query Routing Protocol
// publishing cost footnote 2 of the paper describes.
func (l *Library) BuildQRP(bitsPerLeaf uint64, hashes uint32) int {
	l.qrp = make([]map[HostID]*bloom.Filter, l.topo.NumUltrapeers())
	total := 0
	for u := 0; u < l.topo.NumUltrapeers(); u++ {
		l.qrp[u] = make(map[HostID]*bloom.Filter)
		for _, leaf := range l.topo.UPLeaves[u] {
			f := bloom.New(bitsPerLeaf, hashes)
			for _, sf := range l.files[leaf] {
				for _, term := range l.tokenizer.Tokenize(sf.Name) {
					f.AddString(term)
				}
			}
			l.qrp[u][leaf] = f
			total += f.SizeBytes()
		}
	}
	return total
}

// QRPAdmits reports whether ultrapeer u's Bloom filter for leaf admits all
// query terms (true when QRP is not built: no filter, no suppression).
func (l *Library) QRPAdmits(u, leaf HostID, terms []string) bool {
	if l.qrp == nil {
		return true
	}
	f, ok := l.qrp[u][leaf]
	if !ok {
		return true
	}
	for _, term := range terms {
		if !f.TestString(term) {
			return false
		}
	}
	return true
}

// ReplicaCount returns, for each distinct filename, the number of replicas
// in the whole network — the ground truth the Perfect scheme and the
// model experiments use.
func (l *Library) ReplicaCount() map[string]int {
	counts := make(map[string]int)
	for _, fs := range l.files {
		for _, f := range fs {
			counts[f.Name]++
		}
	}
	return counts
}
