package gnutella

import (
	"fmt"
	"math/rand"
	"sort"
	"time"
)

// This file defines churn *schedules*: precomputed, deterministic
// sequences of down/up events over a host population. The overlay in this
// package applies them to ultrapeers (ScheduleChurn); the scale harness in
// internal/scale applies them to DHT nodes. Precomputing the whole
// schedule from a seed — rather than rolling dice as the simulation runs —
// is what keeps replays byte-reproducible: the same seed always yields the
// same event list regardless of how the consumer interleaves it with other
// work.

// ChurnEvent is one transition of one host: at time At the host goes down
// (Up=false) or comes back (Up=true).
type ChurnEvent struct {
	Host int           // index in [0, Hosts)
	At   time.Duration // virtual time of the transition
	Up   bool
}

// ChurnSchedule is a deterministic churn script over a host population.
// Events are sorted by time (ties by host index). All hosts start up at
// time zero; the zero value is the empty schedule (no churn).
type ChurnSchedule struct {
	Hosts   int
	Horizon time.Duration
	Events  []ChurnEvent
}

// ChurnConfig parameterises GenerateChurn.
type ChurnConfig struct {
	Hosts   int           // population size
	Horizon time.Duration // schedule length
	// MeanSession is the mean up-time between failures (exponential).
	// Zero disables churn entirely: the schedule comes back empty.
	MeanSession time.Duration
	// MeanDowntime is the mean time a failed host stays down before
	// rejoining (exponential). Zero means hosts never rejoin.
	MeanDowntime time.Duration
	Seed         int64
}

// GenerateChurn builds a deterministic schedule: each host alternates
// exponentially distributed up and down periods, starting up, until the
// horizon. The same config always produces the same schedule.
func GenerateChurn(cfg ChurnConfig) ChurnSchedule {
	s := ChurnSchedule{Hosts: cfg.Hosts, Horizon: cfg.Horizon}
	if cfg.Hosts <= 0 || cfg.Horizon <= 0 || cfg.MeanSession <= 0 {
		return s
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	for h := 0; h < cfg.Hosts; h++ {
		t := time.Duration(rng.ExpFloat64() * float64(cfg.MeanSession))
		up := true
		for t < cfg.Horizon {
			s.Events = append(s.Events, ChurnEvent{Host: h, At: t, Up: !up})
			up = !up
			var mean time.Duration
			if up {
				mean = cfg.MeanSession
			} else {
				mean = cfg.MeanDowntime
				if mean <= 0 {
					break // never rejoins
				}
			}
			t += time.Duration(rng.ExpFloat64() * float64(mean))
		}
	}
	s.sortEvents()
	return s
}

// AllDownEpoch returns a schedule that takes every host down at from and
// brings every host back at until (when until > from and within the
// horizon) — the harshest correlated-failure scenario, used to pin that
// consumers survive a window with zero live hosts.
func AllDownEpoch(hosts int, horizon, from, until time.Duration) ChurnSchedule {
	s := ChurnSchedule{Hosts: hosts, Horizon: horizon}
	for h := 0; h < hosts; h++ {
		s.Events = append(s.Events, ChurnEvent{Host: h, At: from, Up: false})
		if until > from && until < horizon {
			s.Events = append(s.Events, ChurnEvent{Host: h, At: until, Up: true})
		}
	}
	s.sortEvents()
	return s
}

func (s *ChurnSchedule) sortEvents() {
	sort.SliceStable(s.Events, func(i, j int) bool {
		if s.Events[i].At != s.Events[j].At {
			return s.Events[i].At < s.Events[j].At
		}
		return s.Events[i].Host < s.Events[j].Host
	})
}

// Validate checks internal consistency: host indices in range, event times
// within [0, Horizon), events sorted, and per-host transitions strictly
// alternating starting from up.
func (s ChurnSchedule) Validate() error {
	state := make(map[int]bool, s.Hosts) // host -> currently up
	var prev time.Duration
	for i, ev := range s.Events {
		if ev.Host < 0 || ev.Host >= s.Hosts {
			return fmt.Errorf("gnutella: churn event %d: host %d out of range [0,%d)", i, ev.Host, s.Hosts)
		}
		if ev.At < 0 || ev.At >= s.Horizon {
			return fmt.Errorf("gnutella: churn event %d: time %v outside [0,%v)", i, ev.At, s.Horizon)
		}
		if ev.At < prev {
			return fmt.Errorf("gnutella: churn event %d: unsorted (at %v after %v)", i, ev.At, prev)
		}
		prev = ev.At
		up, seen := state[ev.Host]
		if !seen {
			up = true
		}
		if ev.Up == up {
			return fmt.Errorf("gnutella: churn event %d: host %d already %s", i, ev.Host, upness(up))
		}
		state[ev.Host] = ev.Up
	}
	return nil
}

func upness(up bool) string {
	if up {
		return "up"
	}
	return "down"
}

// AliveAt replays the schedule and reports whether host is up at time t
// (events at exactly t have taken effect).
func (s ChurnSchedule) AliveAt(host int, t time.Duration) bool {
	up := true
	for _, ev := range s.Events {
		if ev.At > t {
			break
		}
		if ev.Host == host {
			up = ev.Up
		}
	}
	return up
}

// MaxDownFrac returns the largest fraction of hosts simultaneously down at
// any instant of the schedule (0 for an empty schedule or population).
func (s ChurnSchedule) MaxDownFrac() float64 {
	if s.Hosts == 0 || len(s.Events) == 0 {
		return 0
	}
	down := make(map[int]bool, s.Hosts)
	maxDown := 0
	for i := 0; i < len(s.Events); {
		// Apply every event of this instant before sampling.
		j := i
		for j < len(s.Events) && s.Events[j].At == s.Events[i].At {
			if s.Events[j].Up {
				delete(down, s.Events[j].Host)
			} else {
				down[s.Events[j].Host] = true
			}
			j++
		}
		if len(down) > maxDown {
			maxDown = len(down)
		}
		i = j
	}
	return float64(maxDown) / float64(s.Hosts)
}

// Downtime returns the total down-duration of host over the schedule's
// horizon (a host down at the final event stays down until the horizon).
func (s ChurnSchedule) Downtime(host int) time.Duration {
	var total time.Duration
	up := true
	var wentDown time.Duration
	for _, ev := range s.Events {
		if ev.Host != host {
			continue
		}
		if up && !ev.Up {
			wentDown = ev.At
		} else if !up && ev.Up {
			total += ev.At - wentDown
		}
		up = ev.Up
	}
	if !up {
		total += s.Horizon - wentDown
	}
	return total
}

// ScheduleChurn applies the schedule to the overlay: event i detaches or
// re-attaches ultrapeer ups[ev.Host] at virtual time ev.At on the
// network's simulator. Hosts beyond len(ups) are ignored, so a schedule
// generated for a larger population can drive a smaller overlay.
func (n *Network) ScheduleChurn(s ChurnSchedule, ups []HostID) {
	for _, ev := range s.Events {
		if ev.Host >= len(ups) {
			continue
		}
		id := ups[ev.Host]
		up := ev.Up
		n.Sim.At(ev.At, func() {
			if up {
				n.AttachUltrapeer(id)
			} else {
				n.DetachUltrapeer(id)
			}
		})
	}
}
