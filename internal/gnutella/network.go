package gnutella

import (
	"time"

	"piersearch/internal/sim"
	"piersearch/internal/simnet"
)

// NetworkConfig tunes the event-driven overlay.
type NetworkConfig struct {
	// HopDelay is the per-hop forwarding delay. Gnutella ultrapeers queue
	// and rate-limit forwarded traffic, so effective per-hop delays are in
	// seconds; the default (1.25s–2.25s uniform) calibrates first-result
	// latencies to the §4.2 regime (≈6 s popular, ≈73 s single-result).
	HopDelay simnet.LatencyModel
	// DynamicQuery enables iterative deepening (§4's dynamic querying).
	DynamicQuery bool
	// MaxTTL bounds the search horizon (default 5).
	MaxTTL int
	// DesiredResults stops deepening once this many results arrived
	// (default 20).
	DesiredResults int
	// RoundWait is how long the origin waits for a round's results before
	// re-flooding deeper (default 12 s).
	RoundWait time.Duration
	// Seed drives the network latency sampling.
	Seed int64
}

// Normalize fills defaults and returns the config.
func (c NetworkConfig) Normalize() NetworkConfig {
	if c.HopDelay == nil {
		c.HopDelay = simnet.Uniform{Min: 1250 * time.Millisecond, Max: 2250 * time.Millisecond}
	}
	if c.MaxTTL <= 0 {
		c.MaxTTL = 5
	}
	if c.DesiredResults <= 0 {
		c.DesiredResults = 20
	}
	if c.RoundWait <= 0 {
		c.RoundWait = 12 * time.Second
	}
	return c
}

// Hit is one query answer observed at the origin.
type Hit struct {
	Ref FileRef
	At  time.Duration // virtual arrival time, relative to query start
}

// QueryOutcome accumulates one query's results as the simulation runs.
type QueryOutcome struct {
	ID       uint64
	Origin   HostID // the ultrapeer the query entered the overlay at
	Terms    []string
	Started  time.Duration
	Results  []Hit
	Messages int // query + hit transmissions attributable to this query
	Rounds   int // dynamic-query rounds issued

	seen map[FileRef]bool
	done bool
}

// FirstResultLatency returns the delay from query start to the first hit,
// or -1 when no results arrived.
func (q *QueryOutcome) FirstResultLatency() time.Duration {
	if len(q.Results) == 0 {
		return -1
	}
	first := q.Results[0].At
	for _, h := range q.Results[1:] {
		if h.At < first {
			first = h.At
		}
	}
	return first - q.Started
}

// queryMsg floods outward; hitMsg routes back along the reverse path.
type queryMsg struct {
	QID   uint64
	GUID  uint64
	Terms []string
	TTL   int
	Hops  int
}

type hitMsg struct {
	QID  uint64
	GUID uint64
	Refs []FileRef
}

// upState is the per-ultrapeer protocol state.
type upState struct {
	id       HostID
	seenGUID map[uint64]HostID // GUID -> previous hop (reverse path table)
}

// Network is the event-driven Gnutella overlay.
type Network struct {
	Sim  *sim.Sim
	cfg  NetworkConfig
	topo *Topology
	lib  *Library
	net  *simnet.Network
	ups  []*upState

	queries       map[uint64]*QueryOutcome
	browseWaiters map[uint64]func([]SharedFile)
	pongWaiters   map[uint64]func()
	nextQID       uint64
	nextGUID      uint64
}

// NewNetwork builds the event overlay for topo/lib on a fresh simulator.
func NewNetwork(topo *Topology, lib *Library, cfg NetworkConfig) *Network {
	cfg = cfg.Normalize()
	s := sim.New(cfg.Seed)
	n := &Network{
		Sim:           s,
		cfg:           cfg,
		topo:          topo,
		lib:           lib,
		net:           simnet.New(s, simnet.WithLatency(cfg.HopDelay)),
		queries:       make(map[uint64]*QueryOutcome),
		browseWaiters: make(map[uint64]func([]SharedFile)),
		pongWaiters:   make(map[uint64]func()),
	}
	for u := 0; u < topo.NumUltrapeers(); u++ {
		st := &upState{id: u, seenGUID: make(map[uint64]HostID)}
		n.ups = append(n.ups, st)
		id := simnet.NodeID(u)
		n.net.Attach(id, func(m simnet.Message) { n.deliver(st, m) })
	}
	return n
}

// Stats exposes the underlying traffic counters.
func (n *Network) Stats() simnet.Stats { return n.net.Stats() }

// Query injects a query at origin (a leaf enters via its ultrapeer) and
// returns its outcome, which fills in as the simulation advances. Run the
// simulator (n.Sim.Run or RunUntil) to make progress.
func (n *Network) Query(origin HostID, terms []string) *QueryOutcome {
	up := n.topo.UltrapeerOf(origin)
	n.nextQID++
	q := &QueryOutcome{
		ID:      n.nextQID,
		Origin:  up,
		Terms:   terms,
		Started: n.Sim.Now(),
		seen:    make(map[FileRef]bool),
	}
	n.queries[q.ID] = q
	if n.cfg.DynamicQuery {
		n.round(q, 1)
	} else {
		n.round(q, n.cfg.MaxTTL)
	}
	return q
}

// round floods one dynamic-query round with TTL=ttl and schedules the next
// round if needed.
func (n *Network) round(q *QueryOutcome, ttl int) {
	q.Rounds++
	n.nextGUID++
	guid := n.nextGUID
	st := n.ups[q.Origin]
	st.seenGUID[guid] = q.Origin // origin: reverse path terminates here

	// The origin ultrapeer answers from its own subtree immediately.
	n.recordHits(q, n.lib.MatchAt(q.Origin, q.Terms), n.Sim.Now())

	msg := queryMsg{QID: q.ID, GUID: guid, Terms: q.Terms, TTL: ttl, Hops: 1}
	for _, v := range n.topo.UPAdj[q.Origin] {
		n.send(q, q.Origin, v, "query", msg)
	}

	if n.cfg.DynamicQuery && ttl < n.cfg.MaxTTL {
		n.Sim.After(n.cfg.RoundWait, func() {
			if len(q.Results) < n.cfg.DesiredResults {
				n.round(q, ttl+1)
			} else {
				q.done = true
			}
		})
	}
}

func (n *Network) send(q *QueryOutcome, from, to HostID, kind string, payload any) {
	q.Messages++
	size := 60 // Gnutella header + descriptor, approximate
	if qm, ok := payload.(queryMsg); ok {
		for _, t := range qm.Terms {
			size += len(t) + 1
		}
	}
	if hm, ok := payload.(hitMsg); ok {
		size += len(hm.Refs) * 80 // result record: name, size, host, port
	}
	n.net.Send(simnet.Message{From: simnet.NodeID(from), To: simnet.NodeID(to), Kind: kind, Payload: payload, Size: size})
}

func (n *Network) deliver(st *upState, m simnet.Message) {
	switch msg := m.Payload.(type) {
	case queryMsg:
		n.handleQuery(st, HostID(m.From), msg)
	case hitMsg:
		n.handleHit(st, msg)
	case browseMsg:
		n.handleBrowse(st, msg)
	case browseReply:
		n.deliverBrowseReply(msg)
	case pingMsg:
		n.net.Send(simnet.Message{
			From: simnet.NodeID(st.id), To: simnet.NodeID(msg.ReplyTo),
			Kind: "pong", Payload: pongMsg{Seq: msg.Seq}, Size: 37,
		})
	case pongMsg:
		if cb := n.pongWaiters[msg.Seq]; cb != nil {
			delete(n.pongWaiters, msg.Seq)
			cb()
		}
	}
}

func (n *Network) handleQuery(st *upState, from HostID, msg queryMsg) {
	q := n.queries[msg.QID]
	if q == nil {
		return
	}
	if _, dup := st.seenGUID[msg.GUID]; dup {
		return // duplicate suppression: already answered this GUID
	}
	st.seenGUID[msg.GUID] = from

	if refs := n.lib.MatchAt(st.id, msg.Terms); len(refs) > 0 {
		n.send(q, st.id, from, "queryhit", hitMsg{QID: msg.QID, GUID: msg.GUID, Refs: refs})
	}
	if msg.TTL > 1 {
		fwd := msg
		fwd.TTL--
		fwd.Hops++
		for _, v := range n.topo.UPAdj[st.id] {
			if v != from {
				n.send(q, st.id, v, "query", fwd)
			}
		}
	}
}

func (n *Network) handleHit(st *upState, msg hitMsg) {
	q := n.queries[msg.QID]
	if q == nil {
		return
	}
	prev, ok := st.seenGUID[msg.GUID]
	if !ok {
		return // path expired
	}
	if st.id == q.Origin {
		n.recordHits(q, msg.Refs, n.Sim.Now())
		return
	}
	n.send(q, st.id, prev, "queryhit", msg)
}

func (n *Network) recordHits(q *QueryOutcome, refs []FileRef, at time.Duration) {
	for _, ref := range refs {
		if q.seen[ref] {
			continue // dynamic-query rounds re-discover earlier results
		}
		q.seen[ref] = true
		q.Results = append(q.Results, Hit{Ref: ref, At: at})
	}
}
