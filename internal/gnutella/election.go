package gnutella

import (
	"fmt"
	"sort"
	"strings"
)

// Capability describes what a client knows about itself when deciding
// whether it is "ultrapeer capable" (§4.1: nodes look at their uptime,
// operating system and bandwidth, then advertise the result in their
// connection headers).
type Capability struct {
	UptimeMinutes    int
	DownstreamKbps   int
	UpstreamKbps     int
	AcceptedIncoming bool // not firewalled
	ModernOS         bool // can hold many sockets open
}

// Thresholds mirror the LimeWire election heuristics of the era.
const (
	minUltrapeerUptimeMinutes = 30
	minUltrapeerDownKbps      = 64
	minUltrapeerUpKbps        = 32
)

// UltrapeerCapable reports whether the node may promote itself.
func (c Capability) UltrapeerCapable() bool {
	return c.UptimeMinutes >= minUltrapeerUptimeMinutes &&
		c.DownstreamKbps >= minUltrapeerDownKbps &&
		c.UpstreamKbps >= minUltrapeerUpKbps &&
		c.AcceptedIncoming &&
		c.ModernOS
}

// Handshake is a Gnutella 0.6 connection-header exchange. Only the headers
// the paper's discussion touches are modelled: ultrapeer capability, query
// routing (QRP) support, and leaf guidance.
type Handshake struct {
	Headers map[string]string
}

// NewHandshake builds the headers a connecting client offers.
func NewHandshake(cap Capability, asUltrapeer bool) Handshake {
	h := Handshake{Headers: map[string]string{
		"User-Agent":      "piersearch-limewire/1.0",
		"X-Query-Routing": "0.1",
	}}
	if asUltrapeer {
		h.Headers["X-Ultrapeer"] = "True"
	} else {
		h.Headers["X-Ultrapeer"] = "False"
	}
	if cap.UltrapeerCapable() {
		h.Headers["X-Ultrapeer-Capable"] = "True"
	}
	return h
}

// IsUltrapeer reports whether the peer offered itself as an ultrapeer.
func (h Handshake) IsUltrapeer() bool {
	return strings.EqualFold(h.Headers["X-Ultrapeer"], "true")
}

// UltrapeerCapable reports whether the peer advertised capability.
func (h Handshake) UltrapeerCapable() bool {
	return strings.EqualFold(h.Headers["X-Ultrapeer-Capable"], "true")
}

// LeafGuidance is the ultrapeer's response when it has spare capacity and
// the connecting capable leaf should stay a leaf ("X-Ultrapeer-Needed:
// false") or promote itself ("true").
func LeafGuidance(upLeafSlotsFree bool) map[string]string {
	if upLeafSlotsFree {
		return map[string]string{"X-Ultrapeer-Needed": "False"}
	}
	return map[string]string{"X-Ultrapeer-Needed": "True"}
}

// Encode renders the handshake in wire form, headers sorted for
// determinism.
func (h Handshake) Encode() string {
	var b strings.Builder
	b.WriteString("GNUTELLA CONNECT/0.6\r\n")
	keys := make([]string, 0, len(h.Headers))
	for k := range h.Headers {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(&b, "%s: %s\r\n", k, h.Headers[k])
	}
	b.WriteString("\r\n")
	return b.String()
}

// ParseHandshake parses a wire-form handshake.
func ParseHandshake(s string) (Handshake, error) {
	lines := strings.Split(s, "\r\n")
	if len(lines) == 0 || !strings.HasPrefix(lines[0], "GNUTELLA CONNECT/") {
		return Handshake{}, fmt.Errorf("gnutella: not a handshake: %q", firstLine(s))
	}
	h := Handshake{Headers: make(map[string]string)}
	for _, line := range lines[1:] {
		if line == "" {
			break
		}
		k, v, ok := strings.Cut(line, ":")
		if !ok {
			return Handshake{}, fmt.Errorf("gnutella: malformed header %q", line)
		}
		h.Headers[strings.TrimSpace(k)] = strings.TrimSpace(v)
	}
	return h, nil
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\r'); i >= 0 {
		return s[:i]
	}
	return s
}

// Elect runs the self-election over a population of capabilities and
// returns the indices that promote to ultrapeer. The network needs roughly
// one ultrapeer per avgLeaves leaves; capable nodes promote until the
// quota is met, preferring higher uptime (the stability the heuristics
// actually optimise for).
func Elect(caps []Capability, avgLeaves int) []int {
	if avgLeaves <= 0 {
		avgLeaves = 30
	}
	need := len(caps) / (avgLeaves + 1)
	if need < 1 {
		need = 1
	}
	capable := make([]int, 0, len(caps))
	for i, c := range caps {
		if c.UltrapeerCapable() {
			capable = append(capable, i)
		}
	}
	sort.Slice(capable, func(a, b int) bool {
		ca, cb := caps[capable[a]], caps[capable[b]]
		if ca.UptimeMinutes != cb.UptimeMinutes {
			return ca.UptimeMinutes > cb.UptimeMinutes
		}
		return capable[a] < capable[b]
	})
	if len(capable) > need {
		capable = capable[:need]
	}
	sort.Ints(capable)
	return capable
}
