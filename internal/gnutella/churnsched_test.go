package gnutella

import (
	"reflect"
	"testing"
	"time"

	"piersearch/internal/piersearch"
)

func TestGenerateChurnDeterministicAndValid(t *testing.T) {
	cfg := ChurnConfig{
		Hosts:        200,
		Horizon:      10 * time.Minute,
		MeanSession:  2 * time.Minute,
		MeanDowntime: 30 * time.Second,
		Seed:         7,
	}
	a := GenerateChurn(cfg)
	b := GenerateChurn(cfg)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same config produced different schedules")
	}
	if err := a.Validate(); err != nil {
		t.Fatalf("generated schedule invalid: %v", err)
	}
	if len(a.Events) == 0 {
		t.Fatal("expected churn events for a 2-minute mean session over 10 minutes")
	}
	// With short sessions and short downtimes, some host must be down at
	// some point but never the whole population.
	if f := a.MaxDownFrac(); f <= 0 || f >= 1 {
		t.Fatalf("MaxDownFrac = %v, want in (0, 1)", f)
	}
}

func TestChurnScheduleEmpty(t *testing.T) {
	var s ChurnSchedule // zero value: no hosts, no events
	if err := s.Validate(); err != nil {
		t.Fatalf("empty schedule invalid: %v", err)
	}
	if s.MaxDownFrac() != 0 {
		t.Errorf("empty schedule MaxDownFrac = %v, want 0", s.MaxDownFrac())
	}
	if !s.AliveAt(0, time.Minute) {
		t.Error("hosts should be up under the empty schedule")
	}
	if s.Downtime(3) != 0 {
		t.Error("empty schedule should have zero downtime")
	}

	// Churn disabled via zero MeanSession yields the same empty shape.
	disabled := GenerateChurn(ChurnConfig{Hosts: 50, Horizon: time.Minute})
	if len(disabled.Events) != 0 {
		t.Fatalf("disabled churn produced %d events", len(disabled.Events))
	}
	if !disabled.AliveAt(10, 30*time.Second) {
		t.Error("disabled churn should keep every host up")
	}
}

func TestChurnScheduleAllDownEpoch(t *testing.T) {
	s := AllDownEpoch(40, 10*time.Minute, 2*time.Minute, 3*time.Minute)
	if err := s.Validate(); err != nil {
		t.Fatalf("all-down schedule invalid: %v", err)
	}
	if f := s.MaxDownFrac(); f != 1 {
		t.Fatalf("MaxDownFrac = %v, want 1 during the epoch", f)
	}
	for _, h := range []int{0, 17, 39} {
		if s.AliveAt(h, 2*time.Minute+30*time.Second) {
			t.Fatalf("host %d alive mid-epoch", h)
		}
		if !s.AliveAt(h, time.Minute) || !s.AliveAt(h, 4*time.Minute) {
			t.Fatalf("host %d down outside the epoch", h)
		}
		if got, want := s.Downtime(h), time.Minute; got != want {
			t.Fatalf("host %d downtime %v, want %v", h, got, want)
		}
	}
}

func TestChurnScheduleNoRejoin(t *testing.T) {
	s := GenerateChurn(ChurnConfig{
		Hosts:       100,
		Horizon:     20 * time.Minute,
		MeanSession: time.Minute,
		// MeanDowntime zero: once down, down forever.
		Seed: 3,
	})
	if err := s.Validate(); err != nil {
		t.Fatalf("invalid: %v", err)
	}
	for _, ev := range s.Events {
		if ev.Up {
			t.Fatalf("host %d rejoined at %v despite zero MeanDowntime", ev.Host, ev.At)
		}
	}
	// Eventually (almost) everyone is down.
	if f := s.MaxDownFrac(); f < 0.9 {
		t.Fatalf("MaxDownFrac = %v, want >= 0.9 with no rejoins over 20 mean sessions", f)
	}
}

func TestChurnScheduleValidateRejects(t *testing.T) {
	bad := []ChurnSchedule{
		{Hosts: 2, Horizon: time.Minute, Events: []ChurnEvent{{Host: 5, At: time.Second, Up: false}}},
		{Hosts: 2, Horizon: time.Minute, Events: []ChurnEvent{{Host: 0, At: 2 * time.Minute, Up: false}}},
		{Hosts: 2, Horizon: time.Minute, Events: []ChurnEvent{{Host: 0, At: time.Second, Up: true}}}, // already up
		{Hosts: 2, Horizon: time.Minute, Events: []ChurnEvent{
			{Host: 0, At: 30 * time.Second, Up: false}, {Host: 1, At: time.Second, Up: false}, // unsorted
		}},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("schedule %d validated despite being invalid", i)
		}
	}
}

func TestScheduleChurnDrivesOverlay(t *testing.T) {
	topo, err := NewTopology(TopologyConfig{Ultrapeers: 8, Hosts: 40, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	lib := NewLibrary(topo, piersearch.Tokenizer{})
	n := NewNetwork(topo, lib, NetworkConfig{Seed: 1})

	s := AllDownEpoch(4, 10*time.Minute, time.Minute, 2*time.Minute)
	ups := []HostID{0, 1, 2, 3}
	n.ScheduleChurn(s, ups)

	n.Sim.RunUntil(90 * time.Second)
	for _, u := range ups {
		if n.Alive(u) {
			t.Fatalf("ultrapeer %d alive mid-epoch", u)
		}
	}
	if n.Alive(4) {
		// Ultrapeer 4 is outside the schedule's population; it must be
		// untouched (Alive is true for attached peers).
		_ = struct{}{}
	} else {
		t.Fatal("ultrapeer outside schedule population was detached")
	}
	n.Sim.RunUntil(3 * time.Minute)
	for _, u := range ups {
		if !n.Alive(u) {
			t.Fatalf("ultrapeer %d still down after the epoch", u)
		}
	}
}
