package gnutella

// Study mode: analytic BFS over the ultrapeer graph. The measurement
// figures (4–8) need reach sets, message counts and first-match depths for
// tens of thousands of floods; computing them from the graph directly is
// exact for the paper's flooding model (duplicate-suppressed broadcast)
// and orders of magnitude cheaper than event simulation.

// BFSDepths returns the hop distance from src to every ultrapeer
// (-1 when unreachable).
func BFSDepths(t *Topology, src HostID) []int {
	depth := make([]int, t.NumUltrapeers())
	for i := range depth {
		depth[i] = -1
	}
	depth[src] = 0
	queue := []HostID{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range t.UPAdj[u] {
			if depth[v] < 0 {
				depth[v] = depth[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return depth
}

// ReachFirstK returns the first k ultrapeers in BFS order from src
// (including src). This models a flooding horizon expressed as network
// coverage rather than TTL: real floods stop early through dynamic-query
// abort, degree limits and churn, so a single query covers a bounded
// fraction of the overlay even at high TTL.
func ReachFirstK(t *Topology, src HostID, k int) []HostID {
	if k < 1 {
		k = 1
	}
	visited := make(map[HostID]bool, k)
	visited[src] = true
	out := []HostID{src}
	queue := []HostID{src}
	for len(queue) > 0 && len(out) < k {
		u := queue[0]
		queue = queue[1:]
		for _, v := range t.UPAdj[u] {
			if visited[v] {
				continue
			}
			visited[v] = true
			out = append(out, v)
			if len(out) == k {
				return out
			}
			queue = append(queue, v)
		}
	}
	return out
}

// ReachSet returns the ultrapeers within ttl hops of src (including src).
func ReachSet(t *Topology, src HostID, ttl int) []HostID {
	depth := BFSDepths(t, src)
	var out []HostID
	for u, d := range depth {
		if d >= 0 && d <= ttl {
			out = append(out, u)
		}
	}
	return out
}

// FloodCost is the cost/coverage of one duplicate-suppressed flood.
type FloodCost struct {
	TTL      int
	Messages int // query transmissions, duplicates included
	Visited  int // distinct ultrapeers receiving the query
}

// FloodCosts computes, for each TTL in 1..maxTTL, the message count and
// ultrapeer coverage of flooding from src. A node first reached at depth d
// forwards to all neighbours except the sender while d < TTL; transmissions
// to already-visited nodes are the duplicate overhead the paper's Figure 8
// quantifies.
func FloodCosts(t *Topology, src HostID, maxTTL int) []FloodCost {
	depth := BFSDepths(t, src)
	out := make([]FloodCost, maxTTL)
	for ttl := 1; ttl <= maxTTL; ttl++ {
		messages := len(t.UPAdj[src]) // origin sends to every neighbour
		visited := 1
		for u, d := range depth {
			if d <= 0 {
				continue
			}
			if d <= ttl {
				visited++
			}
			// Interior nodes (first reached before the horizon) forward to
			// everyone but the link they got the query from.
			if d < ttl {
				messages += len(t.UPAdj[u]) - 1
			}
		}
		out[ttl-1] = FloodCost{TTL: ttl, Messages: messages, Visited: visited}
	}
	return out
}

// HorizonForFraction returns the smallest TTL whose reach from src covers
// at least frac of all ultrapeers, and the reach set at that TTL. The
// model experiments express horizons as a fraction of the network (§6.2's
// "horizon percent").
func HorizonForFraction(t *Topology, src HostID, frac float64) (int, []HostID) {
	depth := BFSDepths(t, src)
	want := int(frac * float64(t.NumUltrapeers()))
	if want < 1 {
		want = 1
	}
	maxD := 0
	for _, d := range depth {
		if d > maxD {
			maxD = d
		}
	}
	count := make([]int, maxD+2)
	for _, d := range depth {
		if d >= 0 {
			count[d]++
		}
	}
	cum := 0
	for ttl := 0; ttl <= maxD; ttl++ {
		cum += count[ttl]
		if cum >= want {
			return ttl, ReachSet(t, src, ttl)
		}
	}
	return maxD, ReachSet(t, src, maxD)
}

// FirstMatchDepth returns the BFS depth (from vantage) of the nearest
// ultrapeer whose subtree shares a file matching terms, or -1 if none
// does. This drives the first-result latency model: dynamic querying must
// expand the horizon round by round until this depth is inside it.
func FirstMatchDepth(t *Topology, lib *Library, vantage HostID, terms []string) int {
	depth := BFSDepths(t, vantage)
	best := -1
	for u, d := range depth {
		if d < 0 {
			continue
		}
		if best >= 0 && d >= best {
			continue
		}
		if len(lib.MatchAt(u, terms)) > 0 {
			best = d
		}
	}
	return best
}

// MatchesWithin returns every matching file reference within the reach set
// (the results a flood with that horizon would gather).
func MatchesWithin(lib *Library, reach []HostID, terms []string) []FileRef {
	var out []FileRef
	for _, u := range reach {
		out = append(out, lib.MatchAt(u, terms)...)
	}
	return out
}
