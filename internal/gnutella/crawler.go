package gnutella

import (
	"math/rand"
	"time"
)

// CrawlConfig tunes the distributed crawler. The paper crawled ~100k hosts
// in 45 minutes from 30 PlanetLab ultrapeers by recursively invoking the
// neighbour-list API (§4.1); not every node answers, so results are lower
// bounds.
type CrawlConfig struct {
	Seeds              []HostID      // starting ultrapeers (the crawler fleet)
	RespondProb        float64       // probability an ultrapeer answers (default 0.85)
	RequestRTT         time.Duration // mean per-request latency (default 300ms)
	ConcurrencyPerSeed int           // parallel outstanding requests per crawler (default 50)
	Seed               int64
}

func (c CrawlConfig) normalize() CrawlConfig {
	if c.RespondProb <= 0 || c.RespondProb > 1 {
		c.RespondProb = 0.85
	}
	if c.RequestRTT <= 0 {
		c.RequestRTT = 300 * time.Millisecond
	}
	if c.ConcurrencyPerSeed <= 0 {
		c.ConcurrencyPerSeed = 50
	}
	return c
}

// CrawlResult summarises a crawl.
type CrawlResult struct {
	UltrapeersSeen      int // ultrapeers named in any neighbour list
	UltrapeersResponded int
	LeavesSeen          int // leaves of responding ultrapeers
	Requests            int
	EstimatedDuration   time.Duration
	Neighbors           map[HostID][]HostID // the crawled subgraph
}

// HostsSeen is the crawl's lower-bound estimate of the network size.
func (r CrawlResult) HostsSeen() int { return r.UltrapeersSeen + r.LeavesSeen }

// Crawl runs a parallel BFS crawl of the ultrapeer graph.
func Crawl(t *Topology, cfg CrawlConfig) CrawlResult {
	cfg = cfg.normalize()
	rng := rand.New(rand.NewSource(cfg.Seed))
	if len(cfg.Seeds) == 0 {
		cfg.Seeds = []HostID{0}
	}

	res := CrawlResult{Neighbors: make(map[HostID][]HostID)}
	asked := make(map[HostID]bool)
	seen := make(map[HostID]bool)
	queue := append([]HostID(nil), cfg.Seeds...)
	for _, s := range cfg.Seeds {
		seen[s] = true
	}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		if asked[u] {
			continue
		}
		asked[u] = true
		res.Requests++
		if rng.Float64() >= cfg.RespondProb {
			continue // node ignored the crawler
		}
		res.UltrapeersResponded++
		res.LeavesSeen += len(t.UPLeaves[u])
		nbrs := append([]HostID(nil), t.UPAdj[u]...)
		res.Neighbors[u] = nbrs
		for _, v := range nbrs {
			if !seen[v] {
				seen[v] = true
				queue = append(queue, v)
			}
		}
	}
	res.UltrapeersSeen = len(seen)

	// Duration estimate: the crawler fleet issues requests in parallel
	// waves; each wave costs one RTT.
	parallel := len(cfg.Seeds) * cfg.ConcurrencyPerSeed
	waves := (res.Requests + parallel - 1) / parallel
	res.EstimatedDuration = time.Duration(waves) * cfg.RequestRTT
	return res
}
