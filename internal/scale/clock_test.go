package scale

import (
	"testing"
	"time"
)

func TestClockRunsTasksInEventTimeOrder(t *testing.T) {
	c := NewClock()
	var order []string
	err := c.Run(func() {
		c.Go(func() {
			c.Sleep(30 * time.Millisecond)
			order = append(order, "b")
		})
		c.Go(func() {
			c.Sleep(10 * time.Millisecond)
			order = append(order, "a")
		})
		c.Sleep(50 * time.Millisecond)
		order = append(order, "c")
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(order); got != 3 || order[0] != "a" || order[1] != "b" || order[2] != "c" {
		t.Fatalf("order = %v, want [a b c]", order)
	}
	if c.Now() != 50*time.Millisecond {
		t.Fatalf("Now = %v, want 50ms", c.Now())
	}
}

func TestClockTieBreaksByInsertion(t *testing.T) {
	c := NewClock()
	var order []int
	err := c.Run(func() {
		for i := 0; i < 8; i++ {
			i := i
			c.Go(func() {
				c.Sleep(time.Millisecond) // all wake at the same instant
				order = append(order, i)
			})
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("tied events ran as %v, want insertion order", order)
		}
	}
}

func TestClockAtCallbacks(t *testing.T) {
	c := NewClock()
	var fired []time.Duration
	c.At(20*time.Millisecond, func() { fired = append(fired, c.Now()) })
	c.At(5*time.Millisecond, func() { fired = append(fired, c.Now()) })
	err := c.Run(func() { c.Sleep(30 * time.Millisecond) })
	if err != nil {
		t.Fatal(err)
	}
	if len(fired) != 2 || fired[0] != 5*time.Millisecond || fired[1] != 20*time.Millisecond {
		t.Fatalf("callbacks fired at %v, want [5ms 20ms]", fired)
	}
}

func TestClockLeavesFutureCallbacksForNextRun(t *testing.T) {
	c := NewClock()
	fired := false
	c.At(time.Hour, func() { fired = true })
	if err := c.Run(func() { c.Sleep(time.Minute) }); err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Fatal("callback beyond the workload's end fired anyway")
	}
	if c.Now() != time.Minute {
		t.Fatalf("Now = %v, want 1m", c.Now())
	}
	// A later Run that sleeps past it picks it up.
	if err := c.Run(func() { c.Sleep(2 * time.Hour) }); err != nil {
		t.Fatal(err)
	}
	if !fired {
		t.Fatal("queued callback did not fire in the next run")
	}
}

func TestClockNestedSpawns(t *testing.T) {
	c := NewClock()
	count := 0
	var spawn func(depth int)
	spawn = func(depth int) {
		count++
		if depth == 0 {
			return
		}
		c.Sleep(time.Millisecond)
		c.Go(func() { spawn(depth - 1) })
		c.Go(func() { spawn(depth - 1) })
	}
	if err := c.Run(func() { spawn(6) }); err != nil {
		t.Fatal(err)
	}
	if count != 127 { // full binary tree of depth 6
		t.Fatalf("ran %d tasks, want 127", count)
	}
}
