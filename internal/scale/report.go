package scale

import (
	"encoding/json"
	"math"
	"os"

	"piersearch/internal/metrics"
	"piersearch/internal/trace"
)

// ReportSchema is the version tag of the BENCH_scale.json layout. Bump it
// whenever a field is added, removed, or changes meaning; CI fails on
// drift so the committed trajectory stays diffable.
const ReportSchema = "piersearch/bench-scale/v1"

// Report is the replay's serializable result. Everything in it derives
// from virtual-time execution of a seeded config, so the same Config
// marshals to byte-identical JSON: fields are struct-ordered (no maps),
// floats are rounded to fixed precision, and no wall-clock quantity is
// recorded.
type Report struct {
	Schema         string      `json:"schema"`
	Config         ConfigStats `json:"config"`
	Load           LoadStats   `json:"load"`
	Publish        PhaseStats  `json:"publish"`
	Query          QueryStats  `json:"query"`
	Churn          ChurnStats  `json:"churn"`
	VirtualSeconds float64     `json:"virtual_seconds"`
}

// ConfigStats echoes the replay parameters that shaped the run.
type ConfigStats struct {
	Nodes         int     `json:"nodes"`
	StableCore    int     `json:"stable_core"`
	Seed          int64   `json:"seed"`
	DistinctFiles int     `json:"distinct_files"`
	TargetCopies  int     `json:"target_copies"`
	Queries       int     `json:"queries"`
	Publishes     int     `json:"publishes"`
	QPS           float64 `json:"qps"`
	PublishQPS    float64 `json:"publish_qps"`
	Limit         int     `json:"limit"`
	Strategy      string  `json:"strategy"`
	ChurnSessionS float64 `json:"churn_mean_session_s"`
	ChurnDownS    float64 `json:"churn_mean_downtime_s"`
}

// LoadStats describes the directly placed corpus.
type LoadStats struct {
	DistinctFiles int `json:"distinct_files"`
	Instances     int `json:"instances"`
	TuplesPlaced  int `json:"tuples_placed"`
	Replicate     int `json:"replicate"`
}

// Quantiles summarises one histogram. Units depend on the field using it.
type Quantiles struct {
	P50  float64 `json:"p50"`
	P95  float64 `json:"p95"`
	P99  float64 `json:"p99"`
	Mean float64 `json:"mean"`
	Max  float64 `json:"max"`
}

// PhaseStats summarises the measured publish phase.
type PhaseStats struct {
	Count     int       `json:"count"`
	Failed    int       `json:"failed"`
	LatencyMs Quantiles `json:"latency_ms"`
	Messages  uint64    `json:"messages"`
	Bytes     uint64    `json:"bytes"`
}

// QueryStats summarises the replayed query phase.
type QueryStats struct {
	Count          int       `json:"count"`
	Failed         int       `json:"failed"`
	Matches        int       `json:"matches"`
	PostingShipped int       `json:"posting_shipped"`
	LatencyMs      Quantiles `json:"latency_ms"`
	MatchBytes     Quantiles `json:"match_bytes"`
	HopsMean       float64   `json:"hops_mean"`
	Messages       uint64    `json:"messages"`
	Bytes          uint64    `json:"bytes"`
}

// ChurnStats describes the injected churn schedule.
type ChurnStats struct {
	Population  int     `json:"population"`
	Events      int     `json:"events"`
	MaxDownFrac float64 `json:"max_down_frac"`
}

func newReport(cfg Config, tr *trace.Trace) *Report {
	return &Report{
		Schema: ReportSchema,
		Config: ConfigStats{
			Nodes:         cfg.Nodes,
			StableCore:    cfg.StableCore,
			Seed:          cfg.Seed,
			DistinctFiles: len(tr.Files),
			TargetCopies:  tr.TotalInstances(),
			Queries:       len(tr.Queries),
			Publishes:     cfg.Publishes,
			QPS:           cfg.QPS,
			PublishQPS:    cfg.PublishQPS,
			Limit:         cfg.Limit,
			Strategy:      cfg.Strategy.String(),
			ChurnSessionS: cfg.Churn.MeanSession.Seconds(),
			ChurnDownS:    cfg.Churn.MeanDowntime.Seconds(),
		},
	}
}

// round3 rounds to three decimals so float noise cannot leak formatting
// differences into the committed JSON.
func round3(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return math.Round(v*1000) / 1000
}

// quantilesMs converts a seconds-histogram into a millisecond summary.
func quantilesMs(h *metrics.Histogram) Quantiles { return summarize(h, 1000) }

// quantilesRaw summarises a histogram in its native unit.
func quantilesRaw(h *metrics.Histogram) Quantiles { return summarize(h, 1) }

func summarize(h *metrics.Histogram, scale float64) Quantiles {
	if h.Count() == 0 {
		return Quantiles{}
	}
	return Quantiles{
		P50:  round3(h.HistQuantile(0.50) * scale),
		P95:  round3(h.HistQuantile(0.95) * scale),
		P99:  round3(h.HistQuantile(0.99) * scale),
		Mean: round3(h.Mean() * scale),
		Max:  round3(h.Max() * scale),
	}
}

// Marshal renders the report as indented JSON with a trailing newline —
// the exact bytes committed as BENCH_scale.json.
func (r *Report) Marshal() ([]byte, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// WriteFile writes the report to path.
func (r *Report) WriteFile(path string) error {
	b, err := r.Marshal()
	if err != nil {
		return err
	}
	return os.WriteFile(path, b, 0o644)
}
