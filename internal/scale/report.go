package scale

import (
	"encoding/json"
	"math"
	"os"
	"sort"

	"piersearch/internal/metrics"
	"piersearch/internal/trace"
)

// ReportSchema is the version tag of the BENCH_scale.json layout. Bump it
// whenever a field is added, removed, or changes meaning; CI fails on
// drift so the committed trajectory stays diffable.
//
// v2 added per-error-code failure breakdowns to the publish and query
// phases, hot-key-tier cache counters, and the hot-key phases (baseline
// vs cached Zipf replay with hottest-node traffic).
//
// v3 added the routing measurement phase (sampled iterative FindNode
// lookups with hop quantiles plus a routing-table census), per-query hop
// quantiles, and the churn-survival phase (permanent removals under live
// republish/refresh maintenance, then re-queries of pre-churn keys).
//
// v4 added distributed trace sampling: every TraceSample-th replayed
// query runs under a trace root, and the report carries one TraceSummary
// per sampled query (distinct spans, nodes covered, tree depth, RPC
// spans) plus the trace_sample config knob.
const ReportSchema = "piersearch/bench-scale/v4"

// Report is the replay's serializable result. Everything in it derives
// from virtual-time execution of a seeded config, so the same Config
// marshals to byte-identical JSON: fields are struct-ordered (no maps),
// floats are rounded to fixed precision, and no wall-clock quantity is
// recorded.
type Report struct {
	Schema         string          `json:"schema"`
	Config         ConfigStats     `json:"config"`
	Load           LoadStats       `json:"load"`
	Publish        PhaseStats      `json:"publish"`
	Routing        *RoutingReport  `json:"routing,omitempty"`
	Query          QueryStats      `json:"query"`
	Churn          ChurnStats      `json:"churn"`
	HotKey         *HotKeyStats    `json:"hot_key,omitempty"`
	Survival       *SurvivalReport `json:"survival,omitempty"`
	Traces         []TraceSummary  `json:"traces,omitempty"`
	VirtualSeconds float64         `json:"virtual_seconds"`
}

// TraceSummary is one sampled query's distributed trace, reduced to the
// deterministic figures worth committing: how many distinct spans the
// assembled tree holds, how many nodes it covers, how deep it nests,
// and how many DHT RPCs it recorded. Index is the query's position in
// the replayed workload.
type TraceSummary struct {
	Index  int    `json:"index"`
	Query  string `json:"query"`
	Spans  int    `json:"spans"`
	Nodes  int    `json:"nodes"`
	Depth  int    `json:"depth"`
	RPCs   int    `json:"rpcs"`
	Failed bool   `json:"failed,omitempty"`
}

// ConfigStats echoes the replay parameters that shaped the run.
type ConfigStats struct {
	Nodes         int     `json:"nodes"`
	StableCore    int     `json:"stable_core"`
	Seed          int64   `json:"seed"`
	DistinctFiles int     `json:"distinct_files"`
	TargetCopies  int     `json:"target_copies"`
	Queries       int     `json:"queries"`
	Publishes     int     `json:"publishes"`
	QPS           float64 `json:"qps"`
	PublishQPS    float64 `json:"publish_qps"`
	Limit         int     `json:"limit"`
	Strategy      string  `json:"strategy"`
	ChurnSessionS float64 `json:"churn_mean_session_s"`
	ChurnDownS    float64 `json:"churn_mean_downtime_s"`
	HotQueries    int     `json:"hot_queries"`
	HotWarmup     int     `json:"hot_warmup"`
	HotQPS        float64 `json:"hot_qps"`
	HotTerms      int     `json:"hot_terms"`
	HotOrigins    int     `json:"hot_origins"`
	HotZipfS      float64 `json:"hot_zipf_s"`

	TraceSample        int     `json:"trace_sample"`
	RoutingLookups     int     `json:"routing_lookups"`
	SurvivalKeys       int     `json:"survival_keys"`
	SurvivalRemoveFrac float64 `json:"survival_remove_frac"`
	RefreshIntervalS   float64 `json:"refresh_interval_s"`
	RepublishIntervalS float64 `json:"republish_interval_s"`
}

// LoadStats describes the directly placed corpus.
type LoadStats struct {
	DistinctFiles int `json:"distinct_files"`
	Instances     int `json:"instances"`
	TuplesPlaced  int `json:"tuples_placed"`
	Replicate     int `json:"replicate"`
}

// Quantiles summarises one histogram. Units depend on the field using it.
type Quantiles struct {
	P50  float64 `json:"p50"`
	P95  float64 `json:"p95"`
	P99  float64 `json:"p99"`
	Mean float64 `json:"mean"`
	Max  float64 `json:"max"`
}

// FailureCount is one error class and how many operations it killed,
// classified by classifyFailure. The slice form (sorted by code) keeps
// the report map-free and so byte-stable.
type FailureCount struct {
	Code  string `json:"code"`
	Count int    `json:"count"`
}

// PhaseStats summarises the measured publish phase.
type PhaseStats struct {
	Count     int            `json:"count"`
	Failed    int            `json:"failed"`
	Failures  []FailureCount `json:"failures,omitempty"`
	LatencyMs Quantiles      `json:"latency_ms"`
	Messages  uint64         `json:"messages"`
	Bytes     uint64         `json:"bytes"`
}

// QueryStats summarises the replayed query phase.
type QueryStats struct {
	Count          int            `json:"count"`
	Failed         int            `json:"failed"`
	Failures       []FailureCount `json:"failures,omitempty"`
	Matches        int            `json:"matches"`
	PostingShipped int            `json:"posting_shipped"`
	LatencyMs      Quantiles      `json:"latency_ms"`
	MatchBytes     Quantiles      `json:"match_bytes"`
	Hops           Quantiles      `json:"hops"`
	HopsMean       float64        `json:"hops_mean"`
	Messages       uint64         `json:"messages"`
	Bytes          uint64         `json:"bytes"`
	Cache          *CacheStats    `json:"cache,omitempty"`
}

// CacheStats aggregates hot-tier counters across every node's tier for
// one phase (deltas for the main query phase, absolutes for the hot-key
// cached phase, whose tiers are fresh).
type CacheStats struct {
	Hits          int64 `json:"hits"`
	Misses        int64 `json:"misses"`
	Evictions     int64 `json:"evictions"`
	Expirations   int64 `json:"expirations"`
	Invalidations int64 `json:"invalidations"`
	Coalesced     int64 `json:"coalesced"`
	FanoutReads   int64 `json:"fanout_reads"`
}

// HotNodeStats is the traffic the single most-loaded node absorbed
// during one hot-key phase — the survival quantity the tier exists to
// shrink.
type HotNodeStats struct {
	Addr     string `json:"addr"`
	Messages uint64 `json:"messages"`
	Bytes    uint64 `json:"bytes"`
}

// HotPhaseStats summarises one hot-key replay (baseline or cached).
// Warmup queries run before measurement in both phases — identical
// sequences — so the cached phase is measured warm and the baseline
// phase pays the same extra load.
type HotPhaseStats struct {
	Queries     int            `json:"queries"`
	Warmup      int            `json:"warmup"`
	Failed      int            `json:"failed"`
	Failures    []FailureCount `json:"failures,omitempty"`
	Matches     int            `json:"matches"`
	LatencyMs   Quantiles      `json:"latency_ms"`
	Messages    uint64         `json:"messages"`
	Bytes       uint64         `json:"bytes"`
	HottestNode HotNodeStats   `json:"hottest_node"`
	Cache       *CacheStats    `json:"cache,omitempty"`
}

// HotKeyStats is the paired hot-key experiment: the same Zipf-skewed
// single-term workload replayed with the tier disabled and then with
// fresh tiers, plus the headline ratio CI asserts on.
type HotKeyStats struct {
	Terms    int           `json:"terms"`
	Origins  int           `json:"origins"`
	ZipfS    float64       `json:"zipf_s"`
	Baseline HotPhaseStats `json:"baseline"`
	Cached   HotPhaseStats `json:"cached"`
	// HottestMsgReduction = baseline hottest-node messages / cached
	// hottest-node messages (0 when the cached phase's hottest node
	// carried no traffic at all).
	HottestMsgReduction float64 `json:"hottest_msg_reduction"`
}

// RoutingReport summarises the routing measurement phase: sampled
// iterative FindNode lookups from stable-core origins, plus a census of
// routing-table state across every node. It answers the two structural
// questions the Kademlia layer exists for — do lookups converge in
// O(log n) hops, and is per-node routing state O(k·log n) rather than
// O(n)?
type RoutingReport struct {
	Lookups           int       `json:"lookups"`
	Failed            int       `json:"failed"`
	Hops              Quantiles `json:"hops"`
	LatencyMs         Quantiles `json:"latency_ms"`
	MessagesPerLookup float64   `json:"messages_per_lookup"`
	TableContacts     Quantiles `json:"table_contacts"`
	MaxTableContacts  int       `json:"max_table_contacts"`
	TotalContacts     int       `json:"total_contacts"`
	Messages          uint64    `json:"messages"`
	Bytes             uint64    `json:"bytes"`
}

// SurvivalReport summarises the churn-survival phase: a fraction of the
// non-core population is removed permanently while every node's
// republish/refresh maintenance runs, then keys placed before the
// removals are re-queried. Rate is the headline number the replication
// design is judged by.
type SurvivalReport struct {
	Keys              int       `json:"keys"`
	Succeeded         int       `json:"succeeded"`
	Rate              float64   `json:"rate"`
	RemovedNodes      int       `json:"removed_nodes"`
	RemoveFrac        float64   `json:"remove_frac"`
	Hops              Quantiles `json:"hops"`
	LatencyMs         Quantiles `json:"latency_ms"`
	RepublishedValues int64     `json:"republished_values"`
	HandoffsSent      int64     `json:"handoffs_sent"`
	Messages          uint64    `json:"messages"`
	Bytes             uint64    `json:"bytes"`
}

// ChurnStats describes the injected churn schedule.
type ChurnStats struct {
	Population  int     `json:"population"`
	Events      int     `json:"events"`
	MaxDownFrac float64 `json:"max_down_frac"`
}

func newReport(cfg Config, tr *trace.Trace) *Report {
	return &Report{
		Schema: ReportSchema,
		Config: ConfigStats{
			Nodes:         cfg.Nodes,
			StableCore:    cfg.StableCore,
			Seed:          cfg.Seed,
			DistinctFiles: len(tr.Files),
			TargetCopies:  tr.TotalInstances(),
			Queries:       len(tr.Queries),
			Publishes:     cfg.Publishes,
			QPS:           cfg.QPS,
			PublishQPS:    cfg.PublishQPS,
			Limit:         cfg.Limit,
			Strategy:      cfg.Strategy.String(),
			ChurnSessionS: cfg.Churn.MeanSession.Seconds(),
			ChurnDownS:    cfg.Churn.MeanDowntime.Seconds(),
			HotQueries:    cfg.HotKey.Queries,
			HotWarmup:     cfg.HotKey.Warmup,
			HotQPS:        cfg.HotKey.QPS,
			HotTerms:      cfg.HotKey.Terms,
			HotOrigins:    cfg.HotKey.Origins,
			HotZipfS:      cfg.HotKey.ZipfS,

			TraceSample:        cfg.TraceSample,
			RoutingLookups:     cfg.RoutingLookups,
			SurvivalKeys:       cfg.Survival.Keys,
			SurvivalRemoveFrac: cfg.Survival.RemoveFrac,
			RefreshIntervalS:   cfg.Survival.Refresh.Seconds(),
			RepublishIntervalS: cfg.Survival.Republish.Seconds(),
		},
	}
}

// failureCounts renders a failure-class histogram as a code-sorted slice
// (nil when nothing failed, keeping the JSON field omitted).
func failureCounts(m map[string]int) []FailureCount {
	if len(m) == 0 {
		return nil
	}
	codes := make([]string, 0, len(m))
	for c := range m {
		codes = append(codes, c)
	}
	sort.Strings(codes)
	out := make([]FailureCount, len(codes))
	for i, c := range codes {
		out[i] = FailureCount{Code: c, Count: m[c]}
	}
	return out
}

// round3 rounds to three decimals so float noise cannot leak formatting
// differences into the committed JSON.
func round3(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return math.Round(v*1000) / 1000
}

// quantilesMs converts a seconds-histogram into a millisecond summary.
func quantilesMs(h *metrics.Histogram) Quantiles { return summarize(h, 1000) }

// quantilesRaw summarises a histogram in its native unit.
func quantilesRaw(h *metrics.Histogram) Quantiles { return summarize(h, 1) }

func summarize(h *metrics.Histogram, scale float64) Quantiles {
	if h.Count() == 0 {
		return Quantiles{}
	}
	return Quantiles{
		P50:  round3(h.HistQuantile(0.50) * scale),
		P95:  round3(h.HistQuantile(0.95) * scale),
		P99:  round3(h.HistQuantile(0.99) * scale),
		Mean: round3(h.Mean() * scale),
		Max:  round3(h.Max() * scale),
	}
}

// Marshal renders the report as indented JSON with a trailing newline —
// the exact bytes committed as BENCH_scale.json.
func (r *Report) Marshal() ([]byte, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// WriteFile writes the report to path.
func (r *Report) WriteFile(path string) error {
	b, err := r.Marshal()
	if err != nil {
		return err
	}
	return os.WriteFile(path, b, 0o644)
}
