package scale_test

import (
	"bytes"
	"math"
	"runtime"
	"testing"
	"time"

	"piersearch/internal/scale"
	"piersearch/internal/trace"
)

// acceptanceConfig is the ISSUE's acceptance workload: a >=10k-node
// cluster replaying a published corpus with mid-run churn. Under the race
// detector the cluster shrinks — the detector costs an order of magnitude
// in CPU and memory, and the contract being checked (replay completes,
// deterministic, leak-free) does not depend on node count.
func acceptanceConfig() scale.Config {
	cfg := scale.Config{
		Nodes: 10_000,
		Seed:  1,
		Trace: trace.Config{
			DistinctFiles: 4_000,
			TargetCopies:  12_000,
			Queries:       250,
			Seed:          1,
		},
		Publishes: 50,
		QPS:       50,
		Churn: scale.ChurnParams{
			MeanSession:  60 * time.Second,
			MeanDowntime: 30 * time.Second,
		},
		HotKey:         scale.HotKeyParams{Queries: 200},
		RoutingLookups: 200,
		Survival:       scale.SurvivalParams{Keys: 400},
	}
	if raceEnabled {
		cfg.Nodes = 1_500
		cfg.Trace.DistinctFiles = 1_000
		cfg.Trace.TargetCopies = 3_000
		cfg.Trace.Queries = 80
		cfg.Publishes = 20
		cfg.HotKey.Queries = 80
		cfg.RoutingLookups = 80
		cfg.Survival.Keys = 200
	}
	return cfg
}

func TestReplayAcceptance(t *testing.T) {
	if testing.Short() {
		t.Skip("acceptance replay is not a -short test")
	}
	start := time.Now()
	rep, err := scale.Run(acceptanceConfig())
	if err != nil {
		t.Fatal(err)
	}
	wall := time.Since(start)
	if wall > 60*time.Second {
		t.Fatalf("replay took %v wall-clock, want under 60s", wall)
	}
	t.Logf("replayed %d nodes in %v wall (%.1fs virtual)", rep.Config.Nodes, wall, rep.VirtualSeconds)

	if rep.Schema != scale.ReportSchema {
		t.Fatalf("schema = %q, want %q", rep.Schema, scale.ReportSchema)
	}
	if rep.Load.TuplesPlaced == 0 || rep.Load.Instances == 0 {
		t.Fatalf("load phase placed nothing: %+v", rep.Load)
	}
	if rep.Churn.Events == 0 {
		t.Fatal("no churn events were scheduled")
	}
	// The workload must substantially succeed: churn may fail some
	// queries, but a broken harness fails most of them.
	if ok := rep.Query.Count - rep.Query.Failed; ok < rep.Query.Count/2 {
		t.Fatalf("only %d/%d queries succeeded", ok, rep.Query.Count)
	}
	if rep.Publish.Failed > rep.Publish.Count/2 {
		t.Fatalf("%d/%d publishes failed", rep.Publish.Failed, rep.Publish.Count)
	}
	if rep.Query.LatencyMs.P50 <= 0 || rep.Query.LatencyMs.P99 < rep.Query.LatencyMs.P50 {
		t.Fatalf("implausible latency summary: %+v", rep.Query.LatencyMs)
	}
	if rep.Query.Messages == 0 || rep.Query.Bytes == 0 {
		t.Fatal("query phase carried no traffic")
	}

	// Routing acceptance: O(log n) hops and O(k·log n) routing state.
	rt := rep.Routing
	if rt == nil {
		t.Fatal("report has no routing section")
	}
	if rt.Failed > 0 {
		t.Fatalf("%d/%d routing lookups failed", rt.Failed, rt.Lookups)
	}
	logN := math.Log2(float64(rep.Config.Nodes))
	if rt.Hops.Mean <= 0 || rt.Hops.Mean > 0.75*logN {
		t.Fatalf("mean lookup hops = %.2f at %d nodes, want in (0, %.2f] (0.75·log2 n)",
			rt.Hops.Mean, rep.Config.Nodes, 0.75*logN)
	}
	// Per-node routing state must be O(k·log n), nowhere near O(n). k is
	// the dht default bucket size (20).
	stateBound := 20 * (int(math.Ceil(logN)) + 2)
	if rt.MaxTableContacts > stateBound || rt.MaxTableContacts >= rep.Config.Nodes/4 {
		t.Fatalf("max routing table = %d contacts, want <= %d and << n=%d",
			rt.MaxTableContacts, stateBound, rep.Config.Nodes)
	}
	if rt.TotalContacts == 0 || rt.MessagesPerLookup <= 0 {
		t.Fatalf("implausible routing census: %+v", rt)
	}

	// Survival acceptance: with Replicate=3 and republish running, >=99%
	// of pre-churn keys must still resolve after 30% of the non-core
	// population is permanently removed.
	sv := rep.Survival
	if sv == nil {
		t.Fatal("report has no survival section")
	}
	wantRemoved := int(0.3 * float64(rep.Config.Nodes-rep.Config.StableCore))
	if sv.RemovedNodes != wantRemoved {
		t.Fatalf("removed %d nodes, want %d (30%% of non-core)", sv.RemovedNodes, wantRemoved)
	}
	if sv.Rate < 0.99 {
		t.Fatalf("survival rate = %.3f (%d/%d keys), want >= 0.99", sv.Rate, sv.Succeeded, sv.Keys)
	}
	if sv.RepublishedValues == 0 {
		t.Fatal("maintenance republished nothing during the survival phase")
	}

	// Bounded memory: the whole cluster plus its corpus must fit well
	// under 2 GiB of live heap.
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	if ms.HeapAlloc > 2<<30 {
		t.Fatalf("heap after replay = %d MiB, want under 2 GiB", ms.HeapAlloc>>20)
	}
}

// determinismConfig is small enough to run twice in one test but still
// exercises every phase, including churn.
func determinismConfig() scale.Config {
	return scale.Config{
		Nodes: 600,
		Seed:  7,
		Trace: trace.Config{
			DistinctFiles: 600,
			TargetCopies:  1_800,
			Queries:       50,
			Seed:          7,
		},
		Publishes: 15,
		QPS:       40,
		Churn: scale.ChurnParams{
			MeanSession:  30 * time.Second,
			MeanDowntime: 15 * time.Second,
		},
		HotKey:         scale.HotKeyParams{Queries: 60},
		RoutingLookups: 40,
		// Short maintenance intervals so the determinism run actually
		// exercises both the republish and the bucket-refresh timers.
		Survival: scale.SurvivalParams{
			Keys:      60,
			Refresh:   30 * time.Second,
			Republish: 10 * time.Second,
		},
	}
}

func TestReplayDeterministic(t *testing.T) {
	run := func() []byte {
		rep, err := scale.Run(determinismConfig())
		if err != nil {
			t.Fatal(err)
		}
		b, err := rep.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		t.Fatalf("same seed produced different reports:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", a, b)
	}
}

// TestHotKeyCacheReduction pins the PR's headline win: under the
// Zipf-skewed hot-key workload, the hot tier must cut the traffic the
// hottest node absorbs by at least 2x and improve tail latency, without
// changing any answer.
func TestHotKeyCacheReduction(t *testing.T) {
	rep, err := scale.Run(determinismConfig())
	if err != nil {
		t.Fatal(err)
	}
	hk := rep.HotKey
	if hk == nil {
		t.Fatal("report has no hot_key section")
	}
	if hk.Baseline.Failed > 0 || hk.Cached.Failed > 0 {
		t.Fatalf("hot-key phases failed queries: baseline %d, cached %d (%v / %v)",
			hk.Baseline.Failed, hk.Cached.Failed, hk.Baseline.Failures, hk.Cached.Failures)
	}
	if hk.Baseline.Matches != hk.Cached.Matches {
		t.Fatalf("cached phase changed answers: baseline %d matches, cached %d",
			hk.Baseline.Matches, hk.Cached.Matches)
	}
	if hk.Baseline.HottestNode.Messages == 0 {
		t.Fatal("baseline hottest node carried no traffic")
	}
	if hk.HottestMsgReduction < 2 {
		t.Fatalf("hottest-node message reduction = %.3fx (baseline %d -> cached %d at %s), want >= 2x",
			hk.HottestMsgReduction, hk.Baseline.HottestNode.Messages,
			hk.Cached.HottestNode.Messages, hk.Cached.HottestNode.Addr)
	}
	if hk.Cached.LatencyMs.P99 >= hk.Baseline.LatencyMs.P99 {
		t.Fatalf("cached p99 %.1fms not better than baseline p99 %.1fms",
			hk.Cached.LatencyMs.P99, hk.Baseline.LatencyMs.P99)
	}
	if hk.Cached.Cache == nil || hk.Cached.Cache.Hits == 0 {
		t.Fatalf("cached phase recorded no cache hits: %+v", hk.Cached.Cache)
	}
}

func TestReplayLeavesNoGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()
	if _, err := scale.Run(determinismConfig()); err != nil {
		t.Fatal(err)
	}
	// Task goroutines exit before Run returns; give the runtime a moment
	// to reap anything in teardown.
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if runtime.NumGoroutine() <= before {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines: %d before replay, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(20 * time.Millisecond)
	}
}
