//go:build race

package scale_test

// raceEnabled gates workload size: the race detector multiplies both CPU
// and memory cost, so the acceptance test trades node count for coverage
// when it is on.
const raceEnabled = true
