package scale

import (
	"fmt"
	"math/rand"
	"sync"

	"piersearch/internal/dht"
	"piersearch/internal/metrics"
)

// runRoutingPhase measures the Kademlia layer directly: RoutingLookups
// iterative FindNode lookups toward uniform random targets, issued from
// stable-core origins at the query rate, followed by a census of routing
// table state across every node. Lookup hops must grow like O(log n) and
// per-node contacts like O(k·log n) — the two structural claims the
// acceptance tests pin.
func runRoutingPhase(cfg Config, clock *Clock, cl *Cluster) (*RoutingReport, error) {
	rng := rand.New(rand.NewSource(cfg.Seed + 404))
	targets := make([]dht.ID, cfg.RoutingLookups)
	for i := range targets {
		targets[i] = dht.SeededID(rng)
	}

	hops := metrics.NewHistogram(1, 1e3, 40)
	lat := metrics.NewHistogram(1e-3, 1e3, 40)
	failed := 0
	var mu sync.Mutex
	msgs0, bytes0 := cl.Net.Messages(), cl.Net.Bytes()
	step := interval(cfg.QPS)
	err := clock.Run(func() {
		for i := range targets {
			i := i
			clock.Go(func() {
				start := clock.Now()
				_, st, lerr := cl.Nodes[i%cfg.StableCore].Lookup(targets[i])
				elapsed := clock.Now() - start
				mu.Lock()
				defer mu.Unlock()
				if lerr != nil {
					failed++
					return
				}
				hops.Observe(float64(st.Hops))
				lat.Observe(elapsed.Seconds())
			})
			clock.Sleep(step)
		}
	})
	if err != nil {
		return nil, fmt.Errorf("lookups: %w", err)
	}
	msgs1, bytes1 := cl.Net.Messages(), cl.Net.Bytes()

	contacts := metrics.NewHistogram(1, 1e6, 40)
	total, maxContacts := 0, 0
	for _, n := range cl.Nodes {
		l := n.TableLen()
		contacts.Observe(float64(l))
		total += l
		if l > maxContacts {
			maxContacts = l
		}
	}
	return &RoutingReport{
		Lookups:           cfg.RoutingLookups,
		Failed:            failed,
		Hops:              quantilesRaw(hops),
		LatencyMs:         quantilesMs(lat),
		MessagesPerLookup: round3(float64(msgs1-msgs0) / float64(cfg.RoutingLookups)),
		TableContacts:     quantilesRaw(contacts),
		MaxTableContacts:  maxContacts,
		TotalContacts:     total,
		Messages:          msgs1 - msgs0,
		Bytes:             bytes1 - bytes0,
	}, nil
}
