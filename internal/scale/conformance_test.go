package scale_test

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"piersearch/internal/dht"
	"piersearch/internal/dht/dhttest"
	"piersearch/internal/scale"
	"piersearch/internal/simnet"
)

func TestVirtualNetConformance(t *testing.T) {
	dhttest.RunConformance(t, func(t *testing.T) *dhttest.Harness {
		clock := scale.NewClock()
		net := scale.NewNet(clock, simnet.Constant(10*time.Millisecond), 1)
		rng := rand.New(rand.NewSource(7))
		next := 0
		return &dhttest.Harness{
			Transport: net,
			NewNode: func() *dht.Node {
				n := dht.NewNode(dht.NodeInfo{ID: dht.SeededID(rng), Addr: fmt.Sprintf("vt-%d", next)}, net, scale.ClockConfig(clock, dht.Config{}))
				next++
				net.Join(n)
				t.Cleanup(func() { n.Close() }) //nolint:errcheck // test teardown
				return n
			},
			Detach: net.Detach,
			Run: func(fns ...func()) {
				// Virtual-time callers must be clock tasks, not goroutines.
				err := clock.Run(func() {
					for _, fn := range fns {
						clock.Go(fn)
					}
				})
				if err != nil {
					t.Fatalf("clock run: %v", err)
				}
			},
		}
	})
}
