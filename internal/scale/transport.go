package scale

import (
	"context"
	"fmt"
	"math/rand"
	"sync"

	"piersearch/internal/dht"
	"piersearch/internal/simnet"
)

// Net is the virtual-time dht.ContextTransport: each RPC pays two sampled
// latency legs as Clock.Sleep calls instead of wall-clock timers, so a
// 100k-node cluster's traffic executes as fast as the host can switch
// tasks. Latency is drawn from the same simnet.LatencyModel vocabulary as
// the wall-clock transports; because the clock serialises callers, the
// shared rng is consumed in a reproducible order.
//
// Churn is modelled with Detach/Reattach: a detached node stays
// registered but unreachable (calls fail after the request leg, like a
// dead host behind a live route), and reattaching restores it with its
// state intact — the transient-failure model the paper's availability
// argument assumes.
type Net struct {
	clock   *Clock
	latency simnet.LatencyModel

	mu    sync.Mutex
	rng   *rand.Rand
	nodes map[string]*dht.Node
	down  map[string]bool

	messages uint64
	bytes    uint64

	// Per-destination totals, attributed to the callee: both legs of an
	// RPC count against the node that served (or failed to serve) it.
	// This is the load profile the hot-key phases compare — "how much
	// traffic did the hottest node absorb".
	perMsgs  map[string]uint64
	perBytes map[string]uint64
}

// NewNet creates a transport on clock. latency nil means
// simnet.DefaultWideArea; seed drives latency sampling.
func NewNet(clock *Clock, latency simnet.LatencyModel, seed int64) *Net {
	if latency == nil {
		latency = simnet.DefaultWideArea()
	}
	return &Net{
		clock:    clock,
		latency:  latency,
		rng:      rand.New(rand.NewSource(seed)),
		nodes:    make(map[string]*dht.Node),
		down:     make(map[string]bool),
		perMsgs:  make(map[string]uint64),
		perBytes: make(map[string]uint64),
	}
}

// Join registers n so other nodes can reach it.
func (vn *Net) Join(n *dht.Node) {
	vn.mu.Lock()
	defer vn.mu.Unlock()
	vn.nodes[n.Info().Addr] = n
}

// Remove unregisters the node at addr permanently.
func (vn *Net) Remove(addr string) {
	vn.mu.Lock()
	defer vn.mu.Unlock()
	delete(vn.nodes, addr)
	delete(vn.down, addr)
}

// Detach makes the node at addr unreachable without forgetting it (a
// crashed or partitioned host).
func (vn *Net) Detach(addr string) {
	vn.mu.Lock()
	defer vn.mu.Unlock()
	if _, ok := vn.nodes[addr]; ok {
		vn.down[addr] = true
	}
}

// Reattach restores a detached node.
func (vn *Net) Reattach(addr string) {
	vn.mu.Lock()
	defer vn.mu.Unlock()
	delete(vn.down, addr)
}

// Down reports whether addr is currently detached.
func (vn *Net) Down(addr string) bool {
	vn.mu.Lock()
	defer vn.mu.Unlock()
	return vn.down[addr]
}

// Messages returns total one-way messages carried (request + response per
// RPC, matching the other transports' accounting).
func (vn *Net) Messages() uint64 {
	vn.mu.Lock()
	defer vn.mu.Unlock()
	return vn.messages
}

// Bytes returns total wire bytes carried.
func (vn *Net) Bytes() uint64 {
	vn.mu.Lock()
	defer vn.mu.Unlock()
	return vn.bytes
}

// PerNode returns copies of the per-destination message and byte totals.
// Subtract two snapshots to get one phase's per-node load.
func (vn *Net) PerNode() (msgs, bytes map[string]uint64) {
	vn.mu.Lock()
	defer vn.mu.Unlock()
	msgs = make(map[string]uint64, len(vn.perMsgs))
	for a, v := range vn.perMsgs {
		msgs[a] = v
	}
	bytes = make(map[string]uint64, len(vn.perBytes))
	for a, v := range vn.perBytes {
		bytes[a] = v
	}
	return msgs, bytes
}

// Call implements dht.Transport.
func (vn *Net) Call(to dht.NodeInfo, req *dht.Request) (*dht.Response, error) {
	return vn.CallContext(context.Background(), to, req)
}

// CallContext implements dht.ContextTransport. Callers must be clock
// tasks: both latency legs are virtual sleeps. The context is consulted at
// the call boundary — virtual time cannot race a caller-side cancel the
// way wall-clock transports can, so a context canceled before the call
// fails it and the handler never runs.
func (vn *Net) CallContext(ctx context.Context, to dht.NodeInfo, req *dht.Request) (*dht.Response, error) {
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("scale: call %s: %w", to.Addr, err)
	}
	vn.mu.Lock()
	there := vn.latency.Delay(vn.rng)
	back := vn.latency.Delay(vn.rng)
	vn.messages += 2
	vn.bytes += uint64(req.WireSize())
	vn.perMsgs[to.Addr] += 2
	vn.perBytes[to.Addr] += uint64(req.WireSize())
	vn.mu.Unlock()

	vn.clock.Sleep(there)
	vn.mu.Lock()
	node, ok := vn.nodes[to.Addr]
	if vn.down[to.Addr] {
		ok = false
	}
	vn.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("scale: node %s unreachable", to.Addr)
	}
	resp := node.HandleRPC(req)
	vn.clock.Sleep(back)
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("scale: call %s: %w", to.Addr, err)
	}

	vn.mu.Lock()
	vn.bytes += uint64(resp.WireSize())
	vn.perBytes[to.Addr] += uint64(resp.WireSize())
	vn.mu.Unlock()
	return resp, nil
}
