package scale

import (
	"context"
	"errors"
	"sort"

	"piersearch/internal/piersearch"
	"piersearch/internal/telemetry"
)

// scaleRingSpans bounds each simulated node's span ring. Only nodes that
// actually serve a traced request allocate theirs, so a 10k-node replay
// pays for the rings a handful of sampled queries touch, not for all.
const scaleRingSpans = 256

// attachTracers prepares the cluster for trace sampling: every non-core
// node gets a tracer (so owners record serve/lookup spans and piggyback
// them home on traced requests), while query origins get detached
// "shadow" tracers the harness mints sampled roots from. Keeping the
// origins' node tracers nil is what makes sampling selective — a query
// without a sampled root carries no trace context, and the untraced
// fast path records nothing anywhere.
func attachTracers(cl *Cluster, stableCore int, clock *Clock) []*telemetry.Tracer {
	for i := stableCore; i < len(cl.Nodes); i++ {
		cl.Nodes[i].SetTracer(telemetry.NewTracer(cl.Nodes[i].Info().Addr,
			telemetry.WithClock(clock.Now), telemetry.WithRingSize(scaleRingSpans)))
	}
	origins := make([]*telemetry.Tracer, stableCore)
	for i := range origins {
		origins[i] = telemetry.NewTracer(cl.Nodes[i].Info().Addr,
			telemetry.WithClock(clock.Now))
	}
	return origins
}

// tracedQuery runs one sampled query under a fresh root span and returns
// the assembled spans alongside the usual results: the origin's own
// spans (root, plan operators, lookup probes, RPCs) plus everything the
// serving nodes piggybacked back on their responses.
func tracedQuery(tr *telemetry.Tracer, s *piersearch.Search, text string, strat piersearch.Strategy, limit int) ([]piersearch.Result, piersearch.SearchStats, []telemetry.Span, error) {
	ctx, root := tr.StartRoot(context.Background(), "scale.query") //lint:allow ctxflow each sampled query starts its own trace root by design
	root.SetAttr("q", text)
	rs, err := s.QueryContext(ctx, piersearch.Query{Text: text, Strategy: strat, Limit: limit})
	if err != nil {
		root.FinishErr(err)
		return nil, piersearch.SearchStats{}, tr.TraceSpans(root.Trace()), err
	}
	var results []piersearch.Result
	for {
		r, rerr := rs.Next()
		if errors.Is(rerr, piersearch.ErrDone) {
			break
		}
		if rerr != nil {
			stats := rs.Stats()
			rs.Close()
			root.FinishErr(rerr)
			return nil, stats, tr.TraceSpans(root.Trace()), rerr
		}
		results = append(results, r)
	}
	stats := rs.Stats()
	rs.Close()
	root.Finish()
	return results, stats, tr.TraceSpans(root.Trace()), nil
}

// summarizeTrace reduces one sampled query's span set to the report's
// deterministic shape. Spans may contain duplicates (each traced
// response piggybacks a fresh snapshot), so everything counts distinct
// span IDs.
func summarizeTrace(index int, text string, spans []telemetry.Span, failed bool) TraceSummary {
	seen := make(map[telemetry.SpanID]bool, len(spans))
	rpcs := 0
	for _, sp := range spans {
		if seen[sp.ID] {
			continue
		}
		seen[sp.ID] = true
		if sp.Name == "dht.rpc" {
			rpcs++
		}
	}
	return TraceSummary{
		Index:  index,
		Query:  text,
		Spans:  len(seen),
		Nodes:  telemetry.TraceNodes(spans),
		Depth:  telemetry.TraceDepth(spans),
		RPCs:   rpcs,
		Failed: failed,
	}
}

// sortTraces orders sampled summaries by workload index: completion
// order interleaves under virtual time, the report wants stable layout.
func sortTraces(ts []TraceSummary) {
	sort.Slice(ts, func(i, j int) bool { return ts[i].Index < ts[j].Index })
}
