package scale

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"time"

	"piersearch/internal/dht"
	"piersearch/internal/simnet"
)

// contactsPerRange bounds how many contacts a node is seeded with from
// each sibling subtree. Kademlia keeps up to K per bucket, but seeding a
// handful is enough for O(log n) convergent lookups, and it keeps warm-up
// O(n log n) instead of O(n·k).
const contactsPerRange = 8

// Cluster is a virtual-time DHT cluster with warm routing tables. Unlike
// dht.NewCluster it performs zero RPCs to build: node IDs are sorted and
// each node is seeded with contacts in every sibling half of the ID space
// it shares a prefix with, the exact invariant iterative lookups need.
type Cluster struct {
	Clock *Clock
	Net   *Net
	Nodes []*dht.Node

	// byID holds indices into Nodes ordered by node ID; ids mirrors it.
	// Both back the exact-closest computation used for direct placement.
	byID []int
	ids  []dht.ID
}

// lookupWaitPoll is the virtual time between checks when a starved lookup
// worker waits for in-flight probes. Each poll costs one scheduler event,
// so it is deliberately coarse relative to simulated RPC latency: a
// starved worker re-checks a few times per in-flight probe instead of
// dozens, which keeps large replays' event counts (and wall time) down.
const lookupWaitPoll = 50 * time.Millisecond

// ClockConfig adapts cfg to run under clock: timestamps, task spawning,
// sleeping and lookup waits all route through the virtual-time scheduler,
// so DHT maintenance loops and α-parallel lookup workers are ordinary
// clock tasks and same-seed replays stay byte-identical.
func ClockConfig(clock *Clock, cfg dht.Config) dht.Config {
	cfg.Clock = clock.Now
	cfg.Go = clock.Go
	cfg.Sleep = clock.Sleep
	cfg.LookupWait = func(ctx context.Context, wake <-chan struct{}) {
		// Poll rather than select: a bare channel receive would block
		// outside the clock and stall the scheduler forever.
		for {
			select {
			case <-wake:
				return
			default:
			}
			if ctx.Err() != nil {
				return
			}
			clock.Sleep(lookupWaitPoll)
		}
	}
	return cfg
}

// NewCluster builds n nodes on a fresh Net over clock. IDs derive from
// seed; cfg is rebased onto the virtual clock (see ClockConfig) so
// stored-value timestamps, lookup workers and maintenance loops all live
// in virtual time.
func NewCluster(n int, seed int64, clock *Clock, latency simnet.LatencyModel, cfg dht.Config) (*Cluster, error) {
	if n <= 0 {
		return nil, fmt.Errorf("scale: cluster size %d must be positive", n)
	}
	cfg = ClockConfig(clock, cfg)
	c := &Cluster{Clock: clock, Net: NewNet(clock, latency, seed+1)}
	rng := rand.New(rand.NewSource(seed))
	c.Nodes = make([]*dht.Node, n)
	for i := 0; i < n; i++ {
		info := dht.NodeInfo{ID: dht.SeededID(rng), Addr: fmt.Sprintf("v-%d", i)}
		c.Nodes[i] = dht.NewNode(info, c.Net, cfg)
		c.Net.Join(c.Nodes[i])
	}
	c.byID = make([]int, n)
	for i := range c.byID {
		c.byID[i] = i
	}
	sort.Slice(c.byID, func(a, b int) bool {
		return dht.Less(c.Nodes[c.byID[a]].Info().ID, c.Nodes[c.byID[b]].Info().ID)
	})
	c.ids = make([]dht.ID, n)
	for i, idx := range c.byID {
		c.ids[i] = c.Nodes[idx].Info().ID
	}
	c.warmTables(0, n, dht.IDBits-1)
	return c, nil
}

// bitOf returns bit β of id, where β = IDBits-1 is the most significant
// bit — the same numbering as dht.BucketIndex.
func bitOf(id dht.ID, beta int) int {
	return int(id[dht.IDBytes-1-beta/8]>>(uint(beta)%8)) & 1
}

// splitAt returns the first position in sorted ids[lo:hi) whose bit beta
// is 1. All ids in the range share every bit above beta, so the range is
// 0-bits then 1-bits.
func (c *Cluster) splitAt(lo, hi, beta int) int {
	return lo + sort.Search(hi-lo, func(i int) bool {
		return bitOf(c.ids[lo+i], beta) == 1
	})
}

// warmTables recursively seeds routing tables: at each level the sorted
// range splits into the two subtrees below bit beta, every node in one
// half learns up to contactsPerRange evenly spaced nodes of the other
// half, and recursion continues within each half. Every node ends up with
// contacts in every populated sibling subtree — warm enough that lookups
// converge in O(log n) hops with no bootstrap traffic.
func (c *Cluster) warmTables(lo, hi, beta int) {
	if hi-lo <= 1 || beta < 0 {
		return
	}
	mid := c.splitAt(lo, hi, beta)
	if mid > lo && mid < hi {
		c.seedRange(lo, mid, mid, hi)
		c.seedRange(mid, hi, lo, mid)
	}
	c.warmTables(lo, mid, beta-1)
	c.warmTables(mid, hi, beta-1)
}

// seedRange gives every node in [lo,hi) contacts spread over [olo,ohi).
// The selection is staggered by the node's own position so a large
// sibling subtree is not represented by the same few hot nodes in
// everyone's table.
func (c *Cluster) seedRange(lo, hi, olo, ohi int) {
	span := ohi - olo
	count := contactsPerRange
	if count > span {
		count = span
	}
	for p := lo; p < hi; p++ {
		node := c.Nodes[c.byID[p]]
		for j := 0; j < count; j++ {
			pick := olo + (j*span+p-lo)%span
			node.SeedContact(c.Nodes[c.byID[pick]].Info())
		}
	}
}

// Closest returns the r nodes whose IDs are XOR-closest to key, exactly —
// not a routing-table approximation. Direct placement must agree with
// what a later DHT lookup finds, and lookups early-stop at the true
// closest replica set.
func (c *Cluster) Closest(key dht.ID, r int) []*dht.Node {
	if r > len(c.Nodes) {
		r = len(c.Nodes)
	}
	out := make([]*dht.Node, 0, r)
	c.collectClosest(key, 0, len(c.ids), dht.IDBits-1, r, &out)
	return out
}

// collectClosest appends nodes of sorted range [lo,hi) in XOR-distance
// order from key: at each bit the half matching key's bit is uniformly
// closer than the other half, so visiting preferred-half-first yields
// exact order.
func (c *Cluster) collectClosest(key dht.ID, lo, hi, beta, want int, out *[]*dht.Node) {
	if len(*out) >= want || lo >= hi {
		return
	}
	if hi-lo == 1 || beta < 0 {
		for i := lo; i < hi && len(*out) < want; i++ {
			*out = append(*out, c.Nodes[c.byID[i]])
		}
		return
	}
	mid := c.splitAt(lo, hi, beta)
	if bitOf(key, beta) == 0 {
		c.collectClosest(key, lo, mid, beta-1, want, out)
		c.collectClosest(key, mid, hi, beta-1, want, out)
	} else {
		c.collectClosest(key, mid, hi, beta-1, want, out)
		c.collectClosest(key, lo, mid, beta-1, want, out)
	}
}

// Close shuts every node down.
func (c *Cluster) Close() {
	for _, n := range c.Nodes {
		n.Close() //nolint:errcheck // best-effort teardown
	}
}
