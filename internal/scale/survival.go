package scale

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"piersearch/internal/dht"
	"piersearch/internal/metrics"
)

// survivalPoll is how often the survival root task re-checks for query
// completion while draining in-flight work.
const survivalPoll = 100 * time.Millisecond

// runSurvival replays the churn-survival experiment: every node starts
// its maintenance loops (provider-record republish plus bucket refresh,
// all on the virtual clock), RemoveFrac of the non-core population is
// removed permanently — spread across several republish half-intervals so
// survivors can re-replicate between waves — and finally Keys sampled
// pre-churn keys are re-queried from stable-core origins. A key survives
// when at least one live holder still answers; with Replicate=3 and
// republish running, the acceptance bar is a ≥99% survival rate under 30%
// removal (0.3³ ≈ 2.7% loss without repair).
func runSurvival(cfg Config, clock *Clock, cl *Cluster, keys []dht.ID) (*SurvivalReport, error) {
	p := cfg.Survival
	rng := rand.New(rand.NewSource(cfg.Seed + 303))
	sample := make([]dht.ID, p.Keys)
	for i := range sample {
		sample[i] = keys[rng.Intn(len(keys))]
	}

	population := cfg.Nodes - cfg.StableCore
	removeN := int(p.RemoveFrac * float64(population))
	perm := rand.New(rand.NewSource(cfg.Seed + 301)).Perm(population)

	// Maintenance runs on every node, including the ones about to die:
	// a doomed node republishing before its removal is exactly the
	// behaviour that seeds extra replicas.
	stops := make([]func(), len(cl.Nodes))
	for i, n := range cl.Nodes {
		stops[i] = n.StartMaintenance()
	}
	repub0, hand0 := sumMaintenance(cl)

	// Removals spread across two republish half-intervals, so survivors
	// re-replicate between waves; the settle window then covers the
	// worst-case repair delay (rebase just before a removal, repair at the
	// next due tick) for the last wave. Each extra half-interval costs a
	// full republish wave across the cluster, so the schedule is as short
	// as the repair dynamics allow.
	half := cl.Nodes[0].Config().RepublishInterval / 2
	removeSpan := 2 * half
	settle := 2 * half

	lat := metrics.NewHistogram(1e-3, 1e3, 40)
	hops := metrics.NewHistogram(1, 1e3, 40)
	succeeded, done := 0, 0
	var mu sync.Mutex
	msgs0, bytes0 := cl.Net.Messages(), cl.Net.Bytes()
	step := interval(cfg.QPS)
	err := clock.Run(func() {
		base := clock.Now()
		for i := 0; i < removeN; i++ {
			idx := cfg.StableCore + perm[i]
			stop := stops[idx]
			addr := cl.Nodes[idx].Info().Addr
			at := base + half + time.Duration(i)*removeSpan/time.Duration(removeN)
			clock.At(at, func() {
				stop()
				cl.Net.Remove(addr)
			})
		}
		clock.Sleep(half + removeSpan + settle)
		for i := range sample {
			i := i
			clock.Go(func() {
				start := clock.Now()
				vals, st, qerr := cl.Nodes[i%cfg.StableCore].GetID(sample[i])
				elapsed := clock.Now() - start
				mu.Lock()
				defer mu.Unlock()
				done++
				if qerr != nil || len(vals) == 0 {
					return
				}
				succeeded++
				lat.Observe(elapsed.Seconds())
				hops.Observe(float64(st.Hops))
			})
			clock.Sleep(step)
		}
		// Wait for in-flight queries, then stop every maintenance loop so
		// the scheduler can drain and Run can return.
		for {
			mu.Lock()
			d := done
			mu.Unlock()
			if d == len(sample) {
				break
			}
			clock.Sleep(survivalPoll)
		}
		for _, stop := range stops {
			stop()
		}
	})
	if err != nil {
		return nil, fmt.Errorf("replay: %w", err)
	}
	msgs1, bytes1 := cl.Net.Messages(), cl.Net.Bytes()
	repub1, hand1 := sumMaintenance(cl)

	return &SurvivalReport{
		Keys:              len(sample),
		Succeeded:         succeeded,
		Rate:              round3(float64(succeeded) / float64(maxOf(len(sample), 1))),
		RemovedNodes:      removeN,
		RemoveFrac:        p.RemoveFrac,
		Hops:              quantilesRaw(hops),
		LatencyMs:         quantilesMs(lat),
		RepublishedValues: repub1 - repub0,
		HandoffsSent:      hand1 - hand0,
		Messages:          msgs1 - msgs0,
		Bytes:             bytes1 - bytes0,
	}, nil
}

// sumMaintenance totals the maintenance counters across the cluster.
func sumMaintenance(cl *Cluster) (republished, handoffs int64) {
	for _, n := range cl.Nodes {
		s := n.RoutingStats()
		republished += s.RepublishedValues
		handoffs += s.HandoffsSent
	}
	return republished, handoffs
}

func maxOf(a, b int) int {
	if a > b {
		return a
	}
	return b
}
