package scale

import (
	"container/heap"
	"fmt"
	"sync"
	"time"
)

// Clock is a deterministic virtual-time scheduler. Workloads run as tasks
// (Go); a task may block only via Sleep. The scheduler admits exactly one
// task at a time: it pops the earliest event, advances virtual time, wakes
// that event's task (or runs its callback inline), and waits for the woken
// task to block or finish before touching the next event. Ties break by
// insertion order. Because at most one task ever executes, every shared
// structure — transport rng, routing tables, stores — is mutated in one
// reproducible order, which is what makes same-seed replays byte-identical.
//
// The cost is a rule: tasks must not block on anything the clock cannot
// see (bare channels, mutex convoys held across Sleep, wall-clock timers).
// A task that does stalls the scheduler forever; a task still alive when
// the event heap drains is reported as an error by Run.
type Clock struct {
	mu   sync.Mutex
	cond *sync.Cond

	now    time.Duration
	seq    uint64
	events eventHeap

	tasks  int // live tasks: started and not yet finished
	active int // tasks currently runnable (not parked in Sleep)
}

type event struct {
	at    time.Duration
	seq   uint64
	wake  chan struct{} // a sleeping task to resume, or
	fn    func()        // a callback to run inline, or
	start func()        // a task body to launch
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }

// NewClock creates a clock at virtual time zero.
func NewClock() *Clock {
	c := &Clock{}
	c.cond = sync.NewCond(&c.mu)
	return c
}

// Now returns the current virtual time. Safe from any goroutine; tasks see
// it advance only across Sleep calls.
func (c *Clock) Now() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *Clock) push(e event) {
	e.seq = c.seq
	c.seq++
	heap.Push(&c.events, e)
}

// Go schedules fn as a new task starting at the current virtual time. It
// may be called before Run or from inside any task or callback; the task
// body begins once the scheduler reaches its start event.
func (c *Clock) Go(fn func()) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.tasks++
	c.push(event{at: c.now, start: fn})
}

// At schedules fn to run inline at virtual time t (or now, if t has
// passed). Callbacks must not Sleep; use Go for blocking work.
func (c *Clock) At(t time.Duration, fn func()) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if t < c.now {
		t = c.now
	}
	c.push(event{at: t, fn: fn})
}

// Sleep parks the calling task for d of virtual time. Must only be called
// from inside a task started via Go.
func (c *Clock) Sleep(d time.Duration) {
	ch := make(chan struct{})
	c.mu.Lock()
	at := c.now
	if d > 0 {
		at += d
	}
	c.push(event{at: at, wake: ch})
	c.active--
	if c.active == 0 {
		c.cond.Signal()
	}
	c.mu.Unlock()
	<-ch
}

// taskDone is the epilogue of every task goroutine.
func (c *Clock) taskDone() {
	c.mu.Lock()
	c.tasks--
	c.active--
	if c.active == 0 {
		c.cond.Signal()
	}
	c.mu.Unlock()
}

// Run executes root and every task it transitively spawns to completion,
// advancing virtual time as needed. It returns when no live tasks remain;
// events still queued (e.g. churn callbacks beyond the workload's end)
// stay queued for a later Run on the same clock. An error is returned if
// live tasks remain but no event can ever wake them.
func (c *Clock) Run(root func()) error {
	c.Go(root)
	c.mu.Lock()
	defer c.mu.Unlock()
	for {
		for c.active > 0 {
			c.cond.Wait()
		}
		if c.tasks == 0 {
			return nil
		}
		if c.events.Len() == 0 {
			return fmt.Errorf("scale: %d tasks blocked outside the clock with no pending events", c.tasks)
		}
		ev := heap.Pop(&c.events).(event)
		if ev.at > c.now {
			c.now = ev.at
		}
		switch {
		case ev.wake != nil:
			c.active = 1
			close(ev.wake)
		case ev.start != nil:
			c.active = 1
			fn := ev.start
			go func() {
				defer c.taskDone()
				fn()
			}()
		default:
			// Inline callback: runs on the scheduler goroutine, so it must
			// not Sleep. Release the lock so it may call Go/At/Now.
			c.mu.Unlock()
			ev.fn()
			c.mu.Lock()
		}
	}
}
