package scale

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"piersearch/internal/dht"
	"piersearch/internal/gnutella"
	"piersearch/internal/hotcache"
	"piersearch/internal/metrics"
	"piersearch/internal/pier"
	"piersearch/internal/piersearch"
	"piersearch/internal/simnet"
	"piersearch/internal/telemetry"
	"piersearch/internal/trace"
)

// ChurnParams parameterises mid-run node churn. Zero MeanSession disables
// churn.
type ChurnParams struct {
	MeanSession  time.Duration
	MeanDowntime time.Duration
}

// Config parameterises one replay.
type Config struct {
	Nodes int   // cluster size (required)
	Seed  int64 // drives IDs, latency sampling, trace generation, churn

	// StableCore is the number of nodes exempt from churn; publish and
	// query origins are drawn from it, so an origin is never detached
	// while one of its chains is in flight. Default max(4, Nodes/100).
	StableCore int

	Trace trace.Config // corpus + query workload; Hosts is forced to Nodes

	Publishes  int     // measured publishes (default 100)
	PublishQPS float64 // publish arrival rate in virtual time (default QPS)
	QPS        float64 // query arrival rate in virtual time (default 50)

	Limit    int                    // per-query result limit (default 10)
	Strategy piersearch.Strategy    // query plan (default StrategyJoin)
	Mode     piersearch.PublishMode // index layout (default ModeInverted)

	Replicate int                 // DHT replication factor (default dht's 3)
	Latency   simnet.LatencyModel // nil means simnet.DefaultWideArea

	Churn ChurnParams

	// HotKey parameterises the post-churn hot-key phases (baseline vs
	// cached Zipf replay). HotKey.Queries == 0 disables them.
	HotKey HotKeyParams

	// TraceSample records a distributed trace for every TraceSample-th
	// replayed query (0 disables tracing entirely): non-core nodes get
	// span rings, sampled queries run under a root span, and the report
	// carries one TraceSummary per sample. Unsampled queries carry no
	// trace context and record nothing.
	TraceSample int

	// RoutingLookups is the number of sampled iterative FindNode lookups
	// in the routing measurement phase (0 disables it). Targets are
	// uniform random IDs, origins rotate through the stable core.
	RoutingLookups int

	// Survival parameterises the churn-survival phase. Survival.Keys == 0
	// disables it.
	Survival SurvivalParams
}

// SurvivalParams parameterises the churn-survival phase: RemoveFrac of
// the non-core population is removed permanently (no rejoin) while every
// node runs its republish/refresh maintenance loops, then Keys sampled
// pre-removal keys are re-queried from stable-core origins. Refresh and
// Republish override the cluster's dht maintenance intervals so the
// repair dynamics fit inside the replay's virtual-time span.
type SurvivalParams struct {
	Keys       int           // sampled pre-churn keys to re-query (0 disables)
	RemoveFrac float64       // fraction of non-core nodes removed (default 0.3)
	Refresh    time.Duration // bucket-refresh interval (default 10m)
	Republish  time.Duration // provider-record republish interval (default 20s)
}

func (c Config) withDefaults() Config {
	if c.StableCore <= 0 {
		c.StableCore = c.Nodes / 100
		if c.StableCore < 4 {
			c.StableCore = 4
		}
	}
	if c.StableCore > c.Nodes {
		c.StableCore = c.Nodes
	}
	if c.QPS <= 0 {
		c.QPS = 50
	}
	if c.PublishQPS <= 0 {
		c.PublishQPS = c.QPS
	}
	if c.Publishes <= 0 {
		c.Publishes = 100
	}
	if c.Limit <= 0 {
		c.Limit = 10
	}
	c.Trace.Hosts = c.Nodes
	if c.Trace.Seed == 0 {
		c.Trace.Seed = c.Seed
	}
	if c.HotKey.Queries > 0 {
		if c.HotKey.QPS <= 0 {
			c.HotKey.QPS = 200
		}
		if c.HotKey.Terms <= 0 {
			c.HotKey.Terms = 12
		}
		if c.HotKey.Origins <= 0 {
			c.HotKey.Origins = 4
		}
		if c.HotKey.Origins > c.StableCore {
			c.HotKey.Origins = c.StableCore
		}
		if c.HotKey.ZipfS <= 0 {
			c.HotKey.ZipfS = 1.1
		}
		if c.HotKey.Warmup <= 0 {
			c.HotKey.Warmup = c.HotKey.Origins * c.HotKey.Terms
		}
	}
	if c.Survival.Keys > 0 {
		if c.Survival.RemoveFrac <= 0 {
			c.Survival.RemoveFrac = 0.3
		}
		if c.Survival.RemoveFrac > 1 {
			c.Survival.RemoveFrac = 1
		}
		if c.Survival.Refresh <= 0 {
			c.Survival.Refresh = 10 * time.Minute
		}
		if c.Survival.Republish <= 0 {
			c.Survival.Republish = 20 * time.Second
		}
	}
	return c
}

func interval(qps float64) time.Duration {
	return time.Duration(float64(time.Second) / qps)
}

// schemaFor maps a piersearch table name to its schema for offline key
// derivation during the load phase.
func schemaFor(table string) (*pier.Schema, error) {
	switch table {
	case piersearch.TableItem:
		return piersearch.ItemSchema, nil
	case piersearch.TableInverted:
		return piersearch.InvertedSchema, nil
	case piersearch.TableInvertedCache:
		return piersearch.InvertedCacheSchema, nil
	}
	return nil, fmt.Errorf("scale: unknown table %s", table)
}

// Run executes one full replay: build cluster, load the corpus by direct
// placement (zero traffic), replay measured publishes, then replay the
// query workload with churn injected, and report per-phase statistics.
// The same Config always yields an identical Report.
func Run(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	if cfg.Nodes <= 0 {
		return nil, fmt.Errorf("scale: Nodes must be positive")
	}
	clock := NewClock()
	cl, err := NewCluster(cfg.Nodes, cfg.Seed, clock, cfg.Latency, dht.Config{
		Replicate:         cfg.Replicate,
		RefreshInterval:   cfg.Survival.Refresh,
		RepublishInterval: cfg.Survival.Republish,
	})
	if err != nil {
		return nil, err
	}
	defer cl.Close()

	engines := make([]*pier.Engine, cfg.Nodes)
	for i, n := range cl.Nodes {
		engines[i] = pier.NewEngine(n, pier.Config{OrderBySelectivity: true, Workers: 1})
		piersearch.RegisterSchemas(engines[i])
	}

	tr := trace.Generate(cfg.Trace)
	replicate := cl.Nodes[0].Config().Replicate

	// ---- Load phase: place the corpus directly on each tuple's true
	// replica set. No RPCs, no virtual time: this models the index state a
	// long-running network has already built.
	tok := piersearch.Tokenizer{}
	placement := tr.Placement(cfg.Nodes)
	tuplesPlaced := 0
	instances := 0
	var placedKeys []dht.ID
	for rank, f := range tr.Files {
		keywords := tok.Tokenize(f.Name)
		if len(keywords) == 0 {
			continue
		}
		for _, h := range placement[rank] {
			file := piersearch.File{Name: f.Name, Size: fileSize(rank), Host: cl.Nodes[h].Info().Addr, Port: 6346}
			instances++
			for _, pub := range piersearch.IndexTuples(file, keywords, cfg.Mode) {
				sch, err := schemaFor(pub.Table)
				if err != nil {
					return nil, err
				}
				key, err := sch.IndexKey(pub.Tuple)
				if err != nil {
					return nil, err
				}
				id := dht.NamespacedID(pub.Table, key)
				data := pub.Tuple.Encode(nil)
				for _, owner := range cl.Closest(id, replicate) {
					owner.LocalPut(id, data)
				}
				placedKeys = append(placedKeys, id)
				tuplesPlaced++
			}
		}
	}

	rep := newReport(cfg, tr)
	rep.Load = LoadStats{
		DistinctFiles: len(tr.Files),
		Instances:     instances,
		TuplesPlaced:  tuplesPlaced,
		Replicate:     replicate,
	}

	// Every engine runs the hot tier during the main phases, exactly as a
	// deployed node would; the hot-key phases later swap tiers out and back
	// in to isolate the tier's effect.
	tiers := make([]*hotcache.Tier, len(engines))
	tierOpts := scaleTierOptions(clock)
	for i, e := range engines {
		tiers[i] = hotcache.NewTier(tierOpts)
		e.SetHotTier(tiers[i])
	}

	// The harness serialises all tasks, but the stats sink takes a lock
	// anyway so the recording pattern is safe under any scheduler.
	var mu sync.Mutex

	// ---- Publish phase: measured publishes through the real engine put
	// path from stable-core origins, paced at PublishQPS.
	publishers := make([]*piersearch.Publisher, cfg.StableCore)
	for i := 0; i < cfg.StableCore; i++ {
		publishers[i] = piersearch.NewPublisher(engines[i], cfg.Mode, tok).WithWorkers(1)
	}
	pubLat := metrics.NewHistogram(1e-3, 1e3, 40)
	pubFailed := 0
	pubFails := map[string]int{}
	msgs0, bytes0 := cl.Net.Messages(), cl.Net.Bytes()
	err = clock.Run(func() {
		step := interval(cfg.PublishQPS)
		for i := 0; i < cfg.Publishes; i++ {
			i := i
			clock.Go(func() {
				rank := (i * 37) % len(tr.Files)
				file := piersearch.File{
					Name: tr.Files[rank].Name,
					Size: fileSize(rank),
					Host: fmt.Sprintf("pub-%d", i),
					Port: 6346,
				}
				start := clock.Now()
				_, perr := publishers[i%cfg.StableCore].PublishFile(file)
				elapsed := clock.Now() - start
				mu.Lock()
				if perr != nil {
					pubFailed++
					pubFails[classifyFailure(perr)]++
				} else {
					pubLat.Observe(elapsed.Seconds())
				}
				mu.Unlock()
			})
			clock.Sleep(step)
		}
	})
	if err != nil {
		return nil, fmt.Errorf("scale: publish phase: %w", err)
	}
	msgs1, bytes1 := cl.Net.Messages(), cl.Net.Bytes()
	rep.Publish = PhaseStats{
		Count:     cfg.Publishes,
		Failed:    pubFailed,
		Failures:  failureCounts(pubFails),
		LatencyMs: quantilesMs(pubLat),
		Messages:  msgs1 - msgs0,
		Bytes:     bytes1 - bytes0,
	}

	// ---- Routing phase: raw iterative FindNode lookups, before churn
	// starts perturbing the tables, plus a routing-table census.
	if cfg.RoutingLookups > 0 {
		rr, err := runRoutingPhase(cfg, clock, cl)
		if err != nil {
			return nil, fmt.Errorf("scale: routing phase: %w", err)
		}
		rep.Routing = rr
		// Rebase the traffic baseline so the query phase measures only its
		// own messages.
		msgs1, bytes1 = cl.Net.Messages(), cl.Net.Bytes()
	}

	// ---- Query phase, with churn over the non-core population.
	queries := tr.Queries
	step := interval(cfg.QPS)
	population := cfg.Nodes - cfg.StableCore
	var sched gnutella.ChurnSchedule
	var churnEnd time.Duration
	if cfg.Churn.MeanSession > 0 && population > 0 {
		span := step*time.Duration(len(queries)) + 30*time.Second
		sched = gnutella.GenerateChurn(gnutella.ChurnConfig{
			Hosts:        population,
			Horizon:      span,
			MeanSession:  cfg.Churn.MeanSession,
			MeanDowntime: cfg.Churn.MeanDowntime,
			Seed:         cfg.Seed + 101,
		})
		base := clock.Now()
		churnEnd = base + span
		for _, ev := range sched.Events {
			addr := cl.Nodes[cfg.StableCore+ev.Host].Info().Addr
			up := ev.Up
			clock.At(base+ev.At, func() {
				if up {
					cl.Net.Reattach(addr)
				} else {
					cl.Net.Detach(addr)
				}
			})
		}
	}
	rep.Churn = ChurnStats{
		Population:  population,
		Events:      len(sched.Events),
		MaxDownFrac: round3(sched.MaxDownFrac()),
	}

	searches := make([]*piersearch.Search, cfg.StableCore)
	for i := 0; i < cfg.StableCore; i++ {
		searches[i] = piersearch.NewSearch(engines[i], tok).WithWorkers(1)
	}
	qLat := metrics.NewHistogram(1e-3, 1e3, 40)
	qMatchBytes := metrics.NewHistogram(1, 1e8, 10)
	qHopsH := metrics.NewHistogram(1, 1e4, 40)
	qFailed, qMatches, qShipped, qHops := 0, 0, 0, 0
	qFails := map[string]int{}
	var traces []TraceSummary
	var originTracers []*telemetry.Tracer
	if cfg.TraceSample > 0 {
		originTracers = attachTracers(cl, cfg.StableCore, clock)
	}
	cache0 := sumTiers(tiers)
	err = clock.Run(func() {
		for i := range queries {
			i := i
			clock.Go(func() {
				origin := i % cfg.StableCore
				sampled := cfg.TraceSample > 0 && i%cfg.TraceSample == 0
				start := clock.Now()
				var results []piersearch.Result
				var stats piersearch.SearchStats
				var spans []telemetry.Span
				var qerr error
				if sampled {
					results, stats, spans, qerr = tracedQuery(originTracers[origin], searches[origin], queries[i].Text, cfg.Strategy, cfg.Limit)
				} else {
					results, stats, qerr = searches[origin].Query(queries[i].Text, cfg.Strategy, cfg.Limit)
				}
				elapsed := clock.Now() - start
				mu.Lock()
				defer mu.Unlock()
				if sampled {
					traces = append(traces, summarizeTrace(i, queries[i].Text, spans, qerr != nil))
				}
				if qerr != nil {
					qFailed++
					qFails[classifyFailure(qerr)]++
					return
				}
				qLat.Observe(elapsed.Seconds())
				qMatchBytes.Observe(float64(stats.MatchBytes))
				qHopsH.Observe(float64(stats.Hops))
				qMatches += len(results)
				qShipped += stats.PostingShipped
				qHops += stats.Hops
			})
			clock.Sleep(step)
		}
	})
	if err != nil {
		return nil, fmt.Errorf("scale: query phase: %w", err)
	}
	msgs2, bytes2 := cl.Net.Messages(), cl.Net.Bytes()
	qCache := sumTiers(tiers).sub(cache0)
	rep.Query = QueryStats{
		Count:          len(queries),
		Failed:         qFailed,
		Failures:       failureCounts(qFails),
		Matches:        qMatches,
		PostingShipped: qShipped,
		LatencyMs:      quantilesMs(qLat),
		MatchBytes:     quantilesRaw(qMatchBytes),
		Hops:           quantilesRaw(qHopsH),
		HopsMean:       round3(mean(qHops, len(queries)-qFailed)),
		Messages:       msgs2 - msgs1,
		Bytes:          bytes2 - bytes1,
		Cache:          &qCache,
	}
	sortTraces(traces)
	rep.Traces = traces

	// restore drains churn events still queued past the query phase and
	// reattaches every node — the common precondition of the hot-key and
	// survival phases. Idempotent so whichever phase runs first pays it.
	restored := false
	restore := func() error {
		if restored {
			return nil
		}
		restored = true
		if churnEnd <= 0 {
			return nil
		}
		if err := clock.Run(func() {
			if d := churnEnd + time.Second - clock.Now(); d > 0 {
				clock.Sleep(d)
			}
		}); err != nil {
			return fmt.Errorf("scale: churn drain: %w", err)
		}
		for i := cfg.StableCore; i < cfg.Nodes; i++ {
			cl.Net.Reattach(cl.Nodes[i].Info().Addr)
		}
		return nil
	}

	// ---- Hot-key phases: restore every node, then replay the Zipf
	// workload twice (baseline without tiers, then with fresh ones) over
	// identical networks.
	if cfg.HotKey.Queries > 0 {
		if err := restore(); err != nil {
			return nil, err
		}
		terms := hotTerms(tr, cfg.HotKey.Terms)
		if len(terms) > 0 {
			h := &hotRunner{
				cfg:      cfg,
				clock:    clock,
				cl:       cl,
				engines:  engines,
				searches: searches[:cfg.HotKey.Origins],
				terms:    terms,
				picks: zipfPicks(rand.New(rand.NewSource(cfg.Seed+202)),
					cfg.HotKey.Queries, len(terms), cfg.HotKey.ZipfS),
			}
			hk, err := runHotKey(h)
			if err != nil {
				return nil, fmt.Errorf("scale: hot-key phase: %w", err)
			}
			rep.HotKey = hk
		}
	}

	// ---- Survival phase: permanent removals under live maintenance, then
	// re-queries of keys placed before any churn began.
	if cfg.Survival.Keys > 0 && len(placedKeys) > 0 {
		if err := restore(); err != nil {
			return nil, err
		}
		sv, err := runSurvival(cfg, clock, cl, placedKeys)
		if err != nil {
			return nil, fmt.Errorf("scale: survival phase: %w", err)
		}
		rep.Survival = sv
	}

	rep.VirtualSeconds = round3(clock.Now().Seconds())
	return rep, nil
}

// fileSize derives a deterministic file size from a trace rank.
func fileSize(rank int) int64 { return int64(1<<20 + rank) }

func mean(sum, n int) float64 {
	if n <= 0 {
		return 0
	}
	return float64(sum) / float64(n)
}
