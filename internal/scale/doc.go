// Package scale is the virtual-time scale harness: it runs 10k–100k-node
// PIERSearch clusters in-process in seconds of wall-clock time by
// replacing wall-clock link latency (simnet.RealTime) with an
// event-driven virtual clock.
//
// The pieces:
//
//   - Clock: a deterministic cooperative scheduler. Workloads run as
//     clock tasks that may only block via Clock.Sleep; the scheduler runs
//     exactly one task at a time and hands control over at sleep points in
//     event-time order, so a seeded run is fully reproducible — including
//     shared-rng latency sampling and routing-table mutation order.
//   - Net: a dht.ContextTransport whose latency legs are Clock.Sleep
//     calls, with churn hooks (Detach/Reattach) and the same traffic
//     accounting as the wall-clock transports.
//   - Cluster: a cluster builder that skips the O(n·k) RPC bootstrap.
//     Node IDs are sorted and routing tables are warm-filled offline
//     (dht.Node.SeedContact) with contacts in every populated sibling
//     subtree, which is exactly the invariant Kademlia lookups need to
//     converge. It also answers exact XOR-closest queries so the load
//     phase can place tuples directly on the replica set a later lookup
//     will search.
//   - Replay: a workload driver that loads an internal/trace corpus,
//     replays measured publishes and queries at configurable virtual QPS
//     through the real engine paths, injects an internal/gnutella churn
//     schedule mid-run, and reports per-phase latency/byte histograms.
//   - Hot-key phases (hotkey.go): an optional paired experiment after
//     churn drains — the same Zipf-skewed single-term workload replayed
//     with every node's internal/hotcache tier removed and then with
//     fresh tiers, over identical networks. Net's per-destination
//     counters locate the hottest node in each phase; the report carries
//     its load under both and their ratio. The tier's singleflight waits
//     must poll via Clock.Sleep (see scaleTierOptions) — a channel
//     select would block outside the scheduler and deadlock the clock.
//   - Report: the schema-versioned, deterministically-ordered JSON the
//     replay serializes to BENCH_scale.json so the perf trajectory is
//     diffable PR-over-PR. Schema v2 added per-error-code failure
//     breakdowns (classifyFailure), per-phase cache counters, and the
//     hot_key section.
package scale
