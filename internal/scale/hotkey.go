package scale

// Hot-key survival experiment: after the main phases, the same
// Zipf-skewed single-term workload is replayed twice over a drained,
// fully-attached network — once with every engine's hot tier removed
// (baseline) and once with fresh tiers (cached) — and the report pins
// the traffic the hottest node absorbed under each. The workload is
// precomputed once, so both phases replay byte-identical query
// sequences; each phase runs an unmeasured warm-up first (covering every
// (origin, term) pair round-robin) so the cached phase is measured warm
// and the baseline pays the same extra load.

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"time"

	"piersearch/internal/dht"
	"piersearch/internal/hotcache"
	"piersearch/internal/metrics"
	"piersearch/internal/pier"
	"piersearch/internal/piersearch"
	"piersearch/internal/trace"
)

// HotKeyParams parameterises the hot-key phases. Queries == 0 disables
// them.
type HotKeyParams struct {
	// Queries is the number of measured hot-key queries per phase.
	Queries int
	// Warmup is the number of unmeasured warm-up queries per phase
	// (default Origins*Terms: every origin asks every hot term once).
	Warmup int
	// QPS is the hot workload's arrival rate in virtual time (default
	// 200 — deliberately hotter than the main phase, this is a stress
	// experiment).
	QPS float64
	// Terms is the hot vocabulary: the N highest-instance-frequency
	// terms of the trace (default 12).
	Terms int
	// Origins is how many stable-core nodes the queries funnel through
	// (default 4, clamped to StableCore). Few origins make requester-side
	// caching visible; the skew is in the keys either way.
	Origins int
	// ZipfS is the Zipf exponent over the hot terms (default 1.1).
	ZipfS float64
}

// scaleTierOptions is the tier configuration every engine in the harness
// runs: small budgets (10k+ nodes share one process), the virtual clock,
// and a poll-based singleflight wait — the default channel select would
// block outside the clock and deadlock the scheduler.
func scaleTierOptions(clock *Clock) hotcache.Options {
	return hotcache.Options{
		MaxBytes:     1 << 20,
		Shards:       4,
		TTL:          30 * time.Second,
		RouteTTL:     time.Minute,
		Window:       10 * time.Second,
		SketchWidth:  512,
		HotThreshold: 4,
		Clock:        clock.Now,
		Wait: func(ctx context.Context, done <-chan struct{}) error {
			for {
				select {
				case <-done:
					return nil
				default:
				}
				if err := ctx.Err(); err != nil {
					return err
				}
				clock.Sleep(5 * time.Millisecond)
			}
		},
	}
}

// classifyFailure maps an operation error to a short failure code for
// the per-code breakdowns. Substring checks run most-specific first: a
// chain-forward failure wraps an unreachable-node error, and must not be
// filed under the generic cause.
func classifyFailure(err error) string {
	switch {
	case err == nil:
		return ""
	case errors.Is(err, dht.ErrNoContacts):
		return "no-contacts"
	case errors.Is(err, pier.ErrDecode):
		return "decode"
	}
	s := err.Error()
	switch {
	case strings.Contains(s, "forward to step"):
		return "chain-forward"
	case strings.Contains(s, "chain dispatch"):
		return "chain-dispatch"
	case strings.Contains(s, "timed out"):
		return "timeout"
	case strings.Contains(s, "no replica stored"):
		return "no-replica"
	case strings.Contains(s, "unreachable"):
		return "unreachable"
	default:
		return "other"
	}
}

// hotTerms picks the workload's vocabulary: the n terms with the highest
// instance frequency, ties broken alphabetically so the choice is
// deterministic.
func hotTerms(tr *trace.Trace, n int) []string {
	freq := tr.TermInstanceFrequency()
	terms := make([]string, 0, len(freq))
	for t := range freq {
		terms = append(terms, t)
	}
	sort.Slice(terms, func(i, j int) bool {
		if freq[terms[i]] != freq[terms[j]] {
			return freq[terms[i]] > freq[terms[j]]
		}
		return terms[i] < terms[j]
	})
	if len(terms) > n {
		terms = terms[:n]
	}
	return terms
}

// zipfPicks draws n term indexes from a Zipf(s) distribution over k
// terms using the given rng.
func zipfPicks(rng *rand.Rand, n, k int, s float64) []int {
	weights := make([]float64, k)
	total := 0.0
	for i := range weights {
		weights[i] = 1 / math.Pow(float64(i+1), s)
		total += weights[i]
	}
	out := make([]int, n)
	for i := range out {
		r := rng.Float64() * total
		for j, w := range weights {
			r -= w
			if r <= 0 || j == k-1 {
				out[i] = j
				break
			}
		}
	}
	return out
}

// sumTiers aggregates the data-cache and tier counters across nodes.
func sumTiers(tiers []*hotcache.Tier) CacheStats {
	var out CacheStats
	for _, t := range tiers {
		if t == nil {
			continue
		}
		st := t.Stats()
		out.Hits += st.Data.Hits
		out.Misses += st.Data.Misses
		out.Evictions += st.Data.Evictions
		out.Expirations += st.Data.Expirations
		out.Invalidations += st.Data.Invalidations
		out.Coalesced += st.Coalesced
		out.FanoutReads += st.FanoutReads
	}
	return out
}

// sub returns the counter deltas c - o.
func (c CacheStats) sub(o CacheStats) CacheStats {
	return CacheStats{
		Hits:          c.Hits - o.Hits,
		Misses:        c.Misses - o.Misses,
		Evictions:     c.Evictions - o.Evictions,
		Expirations:   c.Expirations - o.Expirations,
		Invalidations: c.Invalidations - o.Invalidations,
		Coalesced:     c.Coalesced - o.Coalesced,
		FanoutReads:   c.FanoutReads - o.FanoutReads,
	}
}

// hottestNode finds the node with the largest message delta between two
// PerNode snapshots (ties break toward the smaller address, so map
// iteration order cannot leak into the report).
func hottestNode(preM, postM, preB, postB map[string]uint64) HotNodeStats {
	var best HotNodeStats
	for addr, m := range postM {
		d := m - preM[addr]
		if d > best.Messages || (d == best.Messages && (best.Addr == "" || addr < best.Addr)) {
			best = HotNodeStats{Addr: addr, Messages: d, Bytes: postB[addr] - preB[addr]}
		}
	}
	return best
}

// hotRunner carries the state the hot-key phases share.
type hotRunner struct {
	cfg      Config
	clock    *Clock
	cl       *Cluster
	engines  []*pier.Engine
	searches []*piersearch.Search
	terms    []string
	picks    []int // measured-query term indexes, shared by both phases
}

// runPhase replays warm-up + measured queries once. tiers is nil for the
// baseline phase; for the cached phase it holds the fresh per-engine
// tiers whose counters the phase reports.
func (h *hotRunner) runPhase(tiers []*hotcache.Tier) (HotPhaseStats, error) {
	hk := h.cfg.HotKey
	step := interval(hk.QPS)
	// Warm-up: every (origin, term) pair round-robin, unmeasured. With
	// no tier this is simply the same extra load the cached phase gets.
	err := h.clock.Run(func() {
		for j := 0; j < hk.Warmup; j++ {
			j := j
			h.clock.Go(func() {
				term := h.terms[(j/hk.Origins)%len(h.terms)]
				h.searches[j%hk.Origins].Query(term, h.cfg.Strategy, h.cfg.Limit) //nolint:errcheck // warm-up only
			})
			h.clock.Sleep(step)
		}
	})
	if err != nil {
		return HotPhaseStats{}, err
	}

	preM, preB := h.cl.Net.PerNode()
	gm0, gb0 := h.cl.Net.Messages(), h.cl.Net.Bytes()
	lat := metrics.NewHistogram(1e-3, 1e3, 40)
	var mu sync.Mutex
	failed, matches := 0, 0
	fails := map[string]int{}
	err = h.clock.Run(func() {
		for i := 0; i < hk.Queries; i++ {
			i := i
			h.clock.Go(func() {
				start := h.clock.Now()
				results, _, qerr := h.searches[i%hk.Origins].Query(h.terms[h.picks[i]], h.cfg.Strategy, h.cfg.Limit)
				elapsed := h.clock.Now() - start
				mu.Lock()
				defer mu.Unlock()
				if qerr != nil {
					failed++
					fails[classifyFailure(qerr)]++
					return
				}
				lat.Observe(elapsed.Seconds())
				matches += len(results)
			})
			h.clock.Sleep(step)
		}
	})
	if err != nil {
		return HotPhaseStats{}, err
	}
	postM, postB := h.cl.Net.PerNode()
	st := HotPhaseStats{
		Queries:     hk.Queries,
		Warmup:      hk.Warmup,
		Failed:      failed,
		Failures:    failureCounts(fails),
		Matches:     matches,
		LatencyMs:   quantilesMs(lat),
		Messages:    h.cl.Net.Messages() - gm0,
		Bytes:       h.cl.Net.Bytes() - gb0,
		HottestNode: hottestNode(preM, postM, preB, postB),
	}
	if tiers != nil {
		c := sumTiers(tiers)
		st.Cache = &c
	}
	return st, nil
}

// runHotKey executes both hot-key phases and returns their paired stats.
// Callers must have drained churn and reattached every node first, so
// the two phases see identical networks.
func runHotKey(h *hotRunner) (*HotKeyStats, error) {
	// Baseline: no tier anywhere.
	for _, e := range h.engines {
		e.SetHotTier(nil)
	}
	baseline, err := h.runPhase(nil)
	if err != nil {
		return nil, err
	}

	// Cached: fresh tiers everywhere, so the reported counters are
	// phase-pure.
	tiers := make([]*hotcache.Tier, len(h.engines))
	opts := scaleTierOptions(h.clock)
	for i, e := range h.engines {
		tiers[i] = hotcache.NewTier(opts)
		e.SetHotTier(tiers[i])
	}
	cached, err := h.runPhase(tiers)
	if err != nil {
		return nil, err
	}

	out := &HotKeyStats{
		Terms:    len(h.terms),
		Origins:  h.cfg.HotKey.Origins,
		ZipfS:    h.cfg.HotKey.ZipfS,
		Baseline: baseline,
		Cached:   cached,
	}
	// A cached phase served entirely from cache leaves the hottest node at
	// zero messages; floor the denominator so the ratio stays finite.
	den := cached.HottestNode.Messages
	if den == 0 {
		den = 1
	}
	out.HottestMsgReduction = round3(float64(baseline.HottestNode.Messages) / float64(den))
	return out, nil
}
