package bench

// Plan-vs-legacy equivalence benchmark: the same 3-keyword query over the
// same latency-bearing topology, once through the legacy monolithic path
// (Engine.ChainJoinConcurrent + manual Item fetch) and once through the
// composable operator plan (Search.QueryContext streaming). The plan path
// must return the same result count and comparable bytes — the benchmark
// reports both so CI artifacts track any drift.

import (
	"context"
	"errors"
	"testing"
	"time"

	"piersearch/internal/pier"
	"piersearch/internal/piersearch"
)

// legacyJoinQuery replicates the pre-plan query path against the raw
// engine entrypoints.
func legacyJoinQuery(tb testing.TB, e *pier.Engine, keywords []string) (int, int) {
	tb.Helper()
	keys := make([]pier.Value, len(keywords))
	for i, kw := range keywords {
		keys[i] = pier.String(kw)
	}
	values, op, err := e.ChainJoinConcurrent(piersearch.TableInverted, keys, "fileID", 0)
	if err != nil {
		tb.Fatal(err)
	}
	bytes := op.Bytes
	results := 0
	var mu = make(chan struct{}, 1)
	mu <- struct{}{}
	pier.ForEach(len(values), e.Workers(), func(i int) {
		tuples, ls, err := e.Fetch(piersearch.TableItem, values[i])
		<-mu
		bytes += ls.Bytes
		if err == nil {
			results += len(tuples)
		}
		mu <- struct{}{}
	})
	return results, bytes
}

// planJoinQuery drives the identical query through the operator plan.
func planJoinQuery(tb testing.TB, s *piersearch.Search, text string) (int, int) {
	tb.Helper()
	rs, err := s.QueryContext(context.Background(), piersearch.Query{Text: text, Strategy: piersearch.StrategyJoin})
	if err != nil {
		tb.Fatal(err)
	}
	defer rs.Close()
	results := 0
	for {
		if _, err := rs.Next(); err != nil {
			if errors.Is(err, piersearch.ErrDone) {
				break
			}
			tb.Fatal(err)
		}
		results++
	}
	return results, rs.Stats().Bytes
}

func BenchmarkPlanVsLegacy(b *testing.B) {
	env := newRTEnv(b, 8, 500*time.Microsecond)
	keywords := []string{"alpha", "beta", "gamma"}

	b.Run("legacy-monolithic", func(b *testing.B) {
		var bytes int
		for i := 0; i < b.N; i++ {
			n, by := legacyJoinQuery(b, env.engines[3], keywords)
			if n == 0 {
				b.Fatal("no results")
			}
			bytes = by
		}
		b.ReportMetric(float64(bytes), "query-bytes")
	})
	b.Run("operator-plan", func(b *testing.B) {
		s := env.search(3, 8)
		var bytes int
		for i := 0; i < b.N; i++ {
			n, by := planJoinQuery(b, s, "alpha beta gamma")
			if n == 0 {
				b.Fatal("no results")
			}
			bytes = by
		}
		b.ReportMetric(float64(bytes), "query-bytes")
	})
}

// TestPlanVsLegacyEquivalence pins the benchmark's claim as an acceptance
// test: same results, bytes within 5%.
func TestPlanVsLegacyEquivalence(t *testing.T) {
	env := newRTEnv(t, 8, 0)
	keywords := []string{"alpha", "beta", "gamma"}
	// Warm routing tables, then measure.
	legacyJoinQuery(t, env.engines[3], keywords)
	planJoinQuery(t, env.search(3, 8), "alpha beta gamma")

	legacyN, legacyBytes := legacyJoinQuery(t, env.engines[3], keywords)
	planN, planBytes := planJoinQuery(t, env.search(3, 8), "alpha beta gamma")
	if legacyN != planN {
		t.Fatalf("plan returned %d results, legacy %d", planN, legacyN)
	}
	diff := legacyBytes - planBytes
	if diff < 0 {
		diff = -diff
	}
	if slack := legacyBytes / 20; diff > slack {
		t.Errorf("plan bytes %d vs legacy %d: drift > 5%%", planBytes, legacyBytes)
	}
}
