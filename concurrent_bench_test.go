package bench

// Sequential-vs-concurrent benchmarks for the query/publish pipeline over
// a latency-bearing simnet.RealTime topology. Unlike the figure benchmarks
// above, which count messages over the zero-latency LocalNetwork, these
// measure wall-clock time: every RPC pays a sampled one-way delay in real
// time, so overlapping round-trips is the only way to go faster.
//
// TestConcurrentJoinSpeedup pins the headline acceptance number: the
// concurrent 3-keyword StrategyJoin query must run at least 2x faster than
// the sequential plan while shipping no more matching-phase bytes.

import (
	"fmt"
	"testing"
	"time"

	"piersearch/internal/dht"
	"piersearch/internal/pier"
	"piersearch/internal/piersearch"
	"piersearch/internal/simnet"
)

// rtEnv is one latency-bearing cluster with PIERSearch deployed on it.
type rtEnv struct {
	rt      *simnet.RealTime
	engines []*pier.Engine
}

// newRTEnv builds a 16-node RealTime cluster whose engines run with the
// given worker bound, seeds the corpus at zero latency, then switches the
// links to oneWay delay. The corpus gives a 3-keyword query ("alpha beta
// gamma") 16 matching files plus a long non-matching tail on the first
// posting list, so the Bloom pre-join has something to prune.
func newRTEnv(tb testing.TB, workers int, oneWay time.Duration) *rtEnv {
	tb.Helper()
	rt, nodes, err := simnet.NewRealTimeCluster(16, 11, dht.Config{K: 8}, simnet.Constant(0))
	if err != nil {
		tb.Fatal(err)
	}
	env := &rtEnv{rt: rt}
	for _, node := range nodes {
		e := pier.NewEngine(node, pier.Config{
			OrderBySelectivity: true,
			Workers:            workers,
			BloomBits:          1024,
		})
		piersearch.RegisterSchemas(e)
		env.engines = append(env.engines, e)
	}
	for _, f := range rtCorpus() {
		pub := piersearch.NewPublisher(env.engines[int(f.Size)%16], piersearch.ModeBoth, piersearch.Tokenizer{})
		if _, err := pub.PublishFile(f); err != nil {
			tb.Fatal(err)
		}
	}
	rt.SetLatency(simnet.Constant(oneWay))
	return env
}

func rtCorpus() []piersearch.File {
	var files []piersearch.File
	add := func(name string) {
		files = append(files, piersearch.File{
			Name: name + ".mp3",
			Size: int64(1_000_000 + len(files)),
			Host: fmt.Sprintf("10.0.%d.%d", len(files)/250, len(files)%250),
			Port: 6346,
		})
	}
	for i := 0; i < 16; i++ {
		add(fmt.Sprintf("alpha beta gamma delta hit%02d", i)) // matches 2-4 kw queries
	}
	// Forty exclusive postings per keyword: whatever list the join starts
	// from, most of it cannot survive the other keywords, so the Bloom
	// pre-join has real traffic to save.
	for i := 0; i < 40; i++ {
		add(fmt.Sprintf("alpha solo%02d", i))
		add(fmt.Sprintf("beta only%02d", i))
		add(fmt.Sprintf("gamma tail%02d", i))
	}
	return files
}

func (env *rtEnv) search(i, workers int) *piersearch.Search {
	return piersearch.NewSearch(env.engines[i], piersearch.Tokenizer{}).WithWorkers(workers)
}

// queryOnce runs one query and returns its stats.
func (env *rtEnv) queryOnce(tb testing.TB, workers int, query string) piersearch.SearchStats {
	tb.Helper()
	results, stats, err := env.search(3, workers).Query(query, piersearch.StrategyJoin, 0)
	if err != nil {
		tb.Fatal(err)
	}
	if len(results) == 0 {
		tb.Fatalf("query %q returned no results", query)
	}
	return stats
}

// TestConcurrentJoinSpeedup is the acceptance check for the concurrent
// pipeline: same topology, same corpus, same 3-keyword join — once through
// engines configured sequential (Workers: 1), once concurrent — comparing
// wall-clock latency and matching-phase bytes. Latency dominates compute
// by orders of magnitude here, so the ratio is structural, not noisy: the
// sequential plan pays ~3 serial probe round-trips and 16 serial Item
// fetches that the concurrent plan overlaps.
func TestConcurrentJoinSpeedup(t *testing.T) {
	const oneWay = 5 * time.Millisecond
	const query = "alpha beta gamma"

	seqEnv := newRTEnv(t, 1, oneWay)
	concEnv := newRTEnv(t, 16, oneWay)

	// Best of two runs per variant to damp scheduler noise.
	seq := seqEnv.queryOnce(t, 1, query)
	if s := seqEnv.queryOnce(t, 1, query); s.Wall < seq.Wall {
		seq = s
	}
	conc := concEnv.queryOnce(t, 16, query)
	if s := concEnv.queryOnce(t, 16, query); s.Wall < conc.Wall {
		conc = s
	}

	t.Logf("sequential: wall=%v matchBytes=%d shipped=%d inFlight=%d",
		seq.Wall, seq.MatchBytes, seq.PostingShipped, seq.MaxInFlight)
	t.Logf("concurrent: wall=%v matchBytes=%d shipped=%d inFlight=%d",
		conc.Wall, conc.MatchBytes, conc.PostingShipped, conc.MaxInFlight)

	if seq.Matches != conc.Matches || conc.Matches != 16 {
		t.Errorf("matches: sequential %d, concurrent %d, want 16 each", seq.Matches, conc.Matches)
	}
	if ratio := float64(seq.Wall) / float64(conc.Wall); ratio < 2.0 {
		t.Errorf("concurrent query %.2fx faster than sequential, want >= 2x (seq %v, conc %v)",
			ratio, seq.Wall, conc.Wall)
	}
	if conc.MatchBytes > seq.MatchBytes {
		t.Errorf("MatchBytes rose under concurrency: %d > %d", conc.MatchBytes, seq.MatchBytes)
	}
	if conc.MaxInFlight < 2 {
		t.Errorf("concurrent MaxInFlight = %d, want >= 2", conc.MaxInFlight)
	}
	if conc.PostingShipped > seq.PostingShipped {
		t.Errorf("PostingShipped rose under concurrency: %d > %d", conc.PostingShipped, seq.PostingShipped)
	}
}

// TestConcurrentPublishSpeedup is the publish-side counterpart: one file
// expands into 1 Item + 5 Inverted + 5 InvertedCache tuples, whose DHT
// puts are independent and overlap under the worker pool.
func TestConcurrentPublishSpeedup(t *testing.T) {
	const oneWay = 5 * time.Millisecond
	seqEnv := newRTEnv(t, 1, oneWay)
	concEnv := newRTEnv(t, 16, oneWay)

	f := piersearch.File{Name: "epsilon zeta eta theta iota.mp3", Size: 42, Host: "10.9.9.9", Port: 6346}
	seqStats, err := piersearch.NewPublisher(seqEnv.engines[2], piersearch.ModeBoth, piersearch.Tokenizer{}).
		WithWorkers(1).PublishFile(f)
	if err != nil {
		t.Fatal(err)
	}
	concStats, err := piersearch.NewPublisher(concEnv.engines[2], piersearch.ModeBoth, piersearch.Tokenizer{}).
		WithWorkers(16).PublishFile(f)
	if err != nil {
		t.Fatal(err)
	}

	t.Logf("sequential: wall=%v tuples=%d", seqStats.Wall, seqStats.Tuples)
	t.Logf("concurrent: wall=%v tuples=%d inFlight=%d", concStats.Wall, concStats.Tuples, concStats.MaxInFlight)

	if seqStats.Tuples != concStats.Tuples {
		t.Errorf("tuples: sequential %d != concurrent %d", seqStats.Tuples, concStats.Tuples)
	}
	if ratio := float64(seqStats.Wall) / float64(concStats.Wall); ratio < 2.0 {
		t.Errorf("concurrent publish %.2fx faster than sequential, want >= 2x (seq %v, conc %v)",
			ratio, seqStats.Wall, concStats.Wall)
	}
	if concStats.MaxInFlight < 2 {
		t.Errorf("concurrent MaxInFlight = %d, want >= 2", concStats.MaxInFlight)
	}
}

// BenchmarkConcurrentPublish times publishing one 5-keyword file through
// both index layouts, sequential vs pooled.
func BenchmarkConcurrentPublish(b *testing.B) {
	const oneWay = 2 * time.Millisecond
	for _, mode := range []struct {
		name    string
		workers int
	}{{"sequential", 1}, {"workers-16", 16}} {
		b.Run(mode.name, func(b *testing.B) {
			env := newRTEnv(b, mode.workers, oneWay)
			pub := piersearch.NewPublisher(env.engines[1], piersearch.ModeBoth, piersearch.Tokenizer{}).
				WithWorkers(mode.workers)
			var stats piersearch.PublishStats
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				f := piersearch.File{
					Name: fmt.Sprintf("kappa lambda mu nu xi %06d.mp3", i),
					Size: int64(i + 1),
					Host: "10.8.8.8",
					Port: 6346,
				}
				s, err := pub.PublishFile(f)
				if err != nil {
					b.Fatal(err)
				}
				stats = s
			}
			b.ReportMetric(float64(stats.Wall.Milliseconds()), "wall-ms/file")
			b.ReportMetric(float64(stats.MaxInFlight), "max-in-flight")
		})
	}
}

// BenchmarkConcurrentQuery times StrategyJoin queries of 2-4 keywords,
// sequential vs concurrent, over 2ms one-way links.
func BenchmarkConcurrentQuery(b *testing.B) {
	const oneWay = 2 * time.Millisecond
	queries := map[int]string{
		2: "alpha beta",
		3: "alpha beta gamma",
		4: "alpha beta gamma delta",
	}
	for _, mode := range []struct {
		name    string
		workers int
	}{{"sequential", 1}, {"workers-16", 16}} {
		env := newRTEnv(b, mode.workers, oneWay)
		for kw := 2; kw <= 4; kw++ {
			b.Run(fmt.Sprintf("%s/keywords-%d", mode.name, kw), func(b *testing.B) {
				var stats piersearch.SearchStats
				for i := 0; i < b.N; i++ {
					stats = env.queryOnce(b, mode.workers, queries[kw])
				}
				b.ReportMetric(float64(stats.Wall.Milliseconds()), "wall-ms")
				b.ReportMetric(float64(stats.MatchBytes), "match-bytes")
				b.ReportMetric(float64(stats.PostingShipped), "postings-shipped")
				b.ReportMetric(float64(stats.MaxInFlight), "max-in-flight")
			})
		}
	}
}
