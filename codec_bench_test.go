package bench

// Gob-vs-codec wire-size comparison. Until PR 2 every engine message was
// serialized with encoding/gob, one encoder per message, so each chain
// step, probe, and reply carried a full reflective type preamble on top of
// per-field tags — overhead sitting directly inside the byte counts §5/§7
// measure. The mirror structs below reproduce that baseline exactly
// (same field names and types as the old pier messages, one
// gob.NewEncoder per message); the codec numbers come from the real
// encoders via pier.ChainMessageSize / pier.EncodeValueSet.
//
// TestCodecByteReduction pins the acceptance number: the binary codec
// must encode chain messages and posting payloads in at least 30% fewer
// bytes than the gob baseline at realistic candidate-set sizes.

import (
	"bytes"
	"crypto/sha1"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"testing"

	"piersearch/internal/dht"
	"piersearch/internal/pier"
)

// gobChainMsg mirrors the pre-PR-2 chainMsg that traveled as gob.
type gobChainMsg struct {
	QID        uint64
	Table      string
	JoinCol    string
	Keys       []pier.Value
	Step       int
	Candidates []pier.Value
	Origin     dht.NodeInfo
	Shipped    int
	Hops       int
	Bytes      int
	Filter     []byte
}

func gobSize(b testing.TB, v any) int {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		b.Fatal(err)
	}
	return buf.Len()
}

func chainFileID(i int) []byte {
	var seed [8]byte
	binary.BigEndian.PutUint64(seed[:], uint64(i))
	h := sha1.Sum(seed[:])
	return h[:]
}

func chainFixture(n int) (keys, candidates []pier.Value, origin dht.NodeInfo) {
	keys = []pier.Value{pier.String("alpha"), pier.String("beta"), pier.String("gamma")}
	candidates = make([]pier.Value, n)
	for i := range candidates {
		candidates[i] = pier.Bytes(chainFileID(i))
	}
	origin = dht.NodeInfo{ID: dht.StringID("origin"), Addr: "10.1.2.3:6346"}
	return keys, candidates, origin
}

func gobChainSize(b testing.TB, n int) int {
	keys, candidates, origin := chainFixture(n)
	return gobSize(b, gobChainMsg{
		QID: 1, Table: "Inverted", JoinCol: "fileID", Keys: keys, Step: 1,
		Candidates: candidates, Origin: origin, Shipped: n, Hops: 1, Bytes: 1 << 12,
	})
}

func codecChainSize(n int) int {
	keys, candidates, origin := chainFixture(n)
	return pier.ChainMessageSize("Inverted", "fileID", keys, candidates, origin)
}

// BenchmarkCodecVsGobChainMsg reports the encoded size of one chain-plan
// message under both wire formats across candidate-set sizes.
func BenchmarkCodecVsGobChainMsg(b *testing.B) {
	for _, n := range []int{8, 32, 64, 512} {
		b.Run(fmt.Sprintf("gob/cands=%d", n), func(b *testing.B) {
			size := 0
			for i := 0; i < b.N; i++ {
				size = gobChainSize(b, n)
			}
			b.ReportMetric(float64(size), "encoded-bytes/op")
		})
		b.Run(fmt.Sprintf("codec/cands=%d", n), func(b *testing.B) {
			size := 0
			for i := 0; i < b.N; i++ {
				size = codecChainSize(n)
			}
			b.ReportMetric(float64(size), "encoded-bytes/op")
		})
	}
}

// BenchmarkCodecVsGobPostings compares a bare posting payload (the fileID
// set a probe returns or a chain step ships) in both formats.
func BenchmarkCodecVsGobPostings(b *testing.B) {
	for _, n := range []int{16, 64, 256} {
		_, candidates, _ := chainFixture(n)
		b.Run(fmt.Sprintf("gob/ids=%d", n), func(b *testing.B) {
			size := 0
			for i := 0; i < b.N; i++ {
				size = gobSize(b, candidates)
			}
			b.ReportMetric(float64(size), "encoded-bytes/op")
		})
		b.Run(fmt.Sprintf("codec/ids=%d", n), func(b *testing.B) {
			size := 0
			var dst []byte
			for i := 0; i < b.N; i++ {
				dst = pier.EncodeValueSet(dst[:0], candidates)
				size = len(dst)
			}
			b.ReportMetric(float64(size), "encoded-bytes/op")
		})
	}
}

// BenchmarkValueSetDecodeAllocs tracks the allocation cost of decoding a
// posting payload: the uniform path now builds every value off one
// backing array, so allocs/op stays flat as the set grows instead of
// scaling with the number of fileIDs.
func BenchmarkValueSetDecodeAllocs(b *testing.B) {
	for _, n := range []int{16, 256, 4096} {
		_, candidates, _ := chainFixture(n)
		wire := pier.EncodeValueSet(nil, candidates)
		b.Run(fmt.Sprintf("ids=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := pier.DecodeValueSet(wire); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// TestCodecByteReduction is the committed acceptance check: ≥30% fewer
// encoded bytes than gob for chain messages at realistic candidate-set
// sizes (the paper's rare-item queries and the Bloom pre-join keep
// candidate sets in the tens), and for the small probe/reply messages
// that dominate message counts.
func TestCodecByteReduction(t *testing.T) {
	for _, n := range []int{0, 8, 32, 64} {
		gobBytes := gobChainSize(t, n)
		codecBytes := codecChainSize(n)
		reduction := 1 - float64(codecBytes)/float64(gobBytes)
		t.Logf("chainMsg cands=%-3d gob=%-5d codec=%-5d reduction=%.0f%%", n, gobBytes, codecBytes, reduction*100)
		if reduction < 0.30 {
			t.Errorf("cands=%d: codec %d bytes vs gob %d bytes: reduction %.0f%% < 30%%", n, codecBytes, gobBytes, reduction*100)
		}
	}
	// Posting payloads must shrink too (front-coding + no preamble), at
	// every size, even where gob's preamble is fully amortized.
	for _, n := range []int{16, 64, 256} {
		_, candidates, _ := chainFixture(n)
		gobBytes := gobSize(t, candidates)
		codecBytes := len(pier.EncodeValueSet(nil, candidates))
		t.Logf("postings ids=%-3d gob=%-5d codec=%-5d reduction=%.0f%%", n, gobBytes, codecBytes, (1-float64(codecBytes)/float64(gobBytes))*100)
		if codecBytes >= gobBytes {
			t.Errorf("ids=%d: codec %d bytes >= gob %d bytes", n, codecBytes, gobBytes)
		}
	}
}
