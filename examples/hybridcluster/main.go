// Hybridcluster: a miniature of the paper's §7 deployment over REAL TCP
// sockets. Eight PIERSearch nodes listen on loopback, join one another,
// publish a small library and answer queries — the same stack cmd/deploy
// simulates at scale, here on live connections.
//
//	go run ./examples/hybridcluster
package main

import (
	"fmt"
	"log"

	"piersearch/internal/dht"
	"piersearch/internal/pier"
	"piersearch/internal/piersearch"
	"piersearch/internal/wire"
)

func main() {
	log.SetFlags(0)
	transport := wire.NewTCPTransport()
	defer transport.Close()

	const n = 8
	var nodes []*dht.Node
	var engines []*pier.Engine
	var servers []*wire.Server
	for i := 0; i < n; i++ {
		ln, err := wire.Listen("127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		node := dht.NewNode(dht.NodeInfo{ID: dht.RandomID(), Addr: ln.Addr().String()}, transport, dht.Config{})
		srv := wire.NewServer(node, ln)
		go srv.Serve() //nolint:errcheck // closed on exit
		engine := pier.NewEngine(node, pier.Config{OrderBySelectivity: true})
		piersearch.RegisterSchemas(engine)
		nodes = append(nodes, node)
		engines = append(engines, engine)
		servers = append(servers, srv)
		fmt.Printf("node %d: %s @ %s\n", i, node.Info().ID.Short(), srv.Addr())
	}
	defer func() {
		for _, s := range servers {
			s.Close()
		}
	}()

	for i := 1; i < n; i++ {
		if err := nodes[i].Bootstrap(nodes[0].Info()); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("\nbootstrapped %d-node DHT over TCP loopback\n\n", n)

	library := []string{
		"Coldplay - Clocks.mp3",
		"Coldplay - Yellow.mp3",
		"Obscure Bootleg - Live at the Basement.mp3",
		"Field Recording - Thunderstorm 2003.wav.mp3",
	}
	for i, name := range library {
		pub := piersearch.NewPublisher(engines[i%n], piersearch.ModeBoth, piersearch.Tokenizer{})
		f := piersearch.File{Name: name, Size: 3_000_000, Host: servers[i%n].Addr(), Port: 6346}
		stats, err := pub.PublishFile(f)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("node %d published %-46q (%d tuples)\n", i%n, name, stats.Tuples)
	}

	search := piersearch.NewSearch(engines[n-1], piersearch.Tokenizer{})
	for _, q := range []string{"coldplay", "obscure bootleg", "thunderstorm"} {
		results, stats, err := search.Query(q, piersearch.StrategyCache, 0)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nsearch %-20q -> %d results (%d msgs over TCP)\n", q, len(results), stats.Messages)
		for _, r := range results {
			fmt.Printf("  %-46s served by %s\n", r.File.Name, r.File.Host)
		}
	}
}
