// Quickstart: build an in-process PIERSearch network, publish a few files
// and run keyword queries with both query plans.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"piersearch/internal/dht"
	"piersearch/internal/pier"
	"piersearch/internal/piersearch"
)

func main() {
	log.SetFlags(0)

	// 1. A DHT of 32 nodes, bootstrapped and ready. Kademlia parameters are
	// sized for a small cluster (bucket width 8, 2 replicas).
	cluster, err := dht.NewCluster(32, 1, dht.Config{K: 8, Alpha: 2, Replicate: 2})
	if err != nil {
		log.Fatal(err)
	}

	// 2. A PIER query-processor engine on every node, with the PIERSearch
	// catalog (Item / Inverted / InvertedCache) registered.
	engines := make([]*pier.Engine, len(cluster.Nodes))
	for i, node := range cluster.Nodes {
		engines[i] = pier.NewEngine(node, pier.Config{OrderBySelectivity: true})
		piersearch.RegisterSchemas(engines[i])
	}

	// 3. Hosts publish their shared files from different nodes.
	files := []piersearch.File{
		{Name: "Madonna - Like a Prayer.mp3", Size: 4_100_000, Host: "10.0.0.1", Port: 6346},
		{Name: "Madonna - Like a Prayer.mp3", Size: 4_100_000, Host: "10.0.0.2", Port: 6346},
		{Name: "Madonna - Music.mp3", Size: 3_900_000, Host: "10.0.0.3", Port: 6346},
		{Name: "Basement Tapes - Unreleased Demo.mp3", Size: 2_000_000, Host: "10.0.0.4", Port: 6346},
	}
	for i, f := range files {
		pub := piersearch.NewPublisher(engines[i%len(engines)], piersearch.ModeBoth, piersearch.Tokenizer{})
		stats, err := pub.Publish(f)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("published %-42q  %d tuples, %4.1f KB\n", f.Name, stats.Tuples, float64(stats.Bytes)/1024)
	}

	// 4. Query from yet another node, with both §3.2 plans.
	search := piersearch.NewSearch(engines[20], piersearch.Tokenizer{})
	for _, q := range []string{"madonna prayer", "basement demo", "madonna"} {
		for _, strat := range []piersearch.Strategy{piersearch.StrategyJoin, piersearch.StrategyCache} {
			results, stats, err := search.Query(q, strat, 0)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("\n%q via %v: %d results (%d msgs, %.1f KB)\n",
				q, strat, len(results), stats.Messages, float64(stats.Bytes)/1024)
			for _, r := range results {
				fmt.Printf("  %-42s %s:%d\n", r.File.Name, r.File.Host, r.File.Port)
			}
		}
	}
}
