// Quickstart: build an in-process PIERSearch network, publish a few files
// and run keyword queries with both query plans through the streaming
// plan API — results arrive incrementally and a context cancels or
// deadlines the whole wide-area query. The finale serves the same engine
// through the network query service and searches it with a thin client
// that never joins the DHT.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"time"

	"piersearch/internal/dht"
	"piersearch/internal/pier"
	"piersearch/internal/piersearch"
	"piersearch/internal/service"
	"piersearch/internal/wire"
)

func main() {
	log.SetFlags(0)

	// 1. A DHT of 32 nodes, bootstrapped and ready. Kademlia parameters are
	// sized for a small cluster (bucket width 8, 2 replicas).
	cluster, err := dht.NewCluster(32, 1, dht.Config{K: 8, Alpha: 2, Replicate: 2})
	if err != nil {
		log.Fatal(err)
	}

	// 2. A PIER query-processor engine on every node, with the PIERSearch
	// catalog (Item / Inverted / InvertedCache) registered.
	engines := make([]*pier.Engine, len(cluster.Nodes))
	for i, node := range cluster.Nodes {
		engines[i] = pier.NewEngine(node, pier.Config{OrderBySelectivity: true})
		piersearch.RegisterSchemas(engines[i])
	}

	// 3. Hosts publish their shared files from different nodes.
	files := []piersearch.File{
		{Name: "Madonna - Like a Prayer.mp3", Size: 4_100_000, Host: "10.0.0.1", Port: 6346},
		{Name: "Madonna - Like a Prayer.mp3", Size: 4_100_000, Host: "10.0.0.2", Port: 6346},
		{Name: "Madonna - Music.mp3", Size: 3_900_000, Host: "10.0.0.3", Port: 6346},
		{Name: "Basement Tapes - Unreleased Demo.mp3", Size: 2_000_000, Host: "10.0.0.4", Port: 6346},
	}
	for i, f := range files {
		pub := piersearch.NewPublisher(engines[i%len(engines)], piersearch.ModeBoth, piersearch.Tokenizer{})
		stats, err := pub.PublishFile(f)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("published %-42q  %d tuples, %4.1f KB\n", f.Name, stats.Tuples, float64(stats.Bytes)/1024)
	}

	// 4. Query from yet another node, with both §3.2 plans, through the
	// streaming API: every query runs under a deadline, and results print
	// as the plan produces them instead of after the full drain.
	search := piersearch.NewSearch(engines[20], piersearch.Tokenizer{})
	for _, q := range []string{"madonna prayer", "basement demo", "madonna"} {
		for _, strat := range []piersearch.Strategy{piersearch.StrategyJoin, piersearch.StrategyCache} {
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			rs, err := search.QueryContext(ctx, piersearch.Query{Text: q, Strategy: strat})
			if err != nil {
				cancel()
				log.Fatal(err)
			}
			fmt.Printf("\n%q via %v:\n", q, strat)
			n := 0
			for {
				r, err := rs.Next()
				if errors.Is(err, piersearch.ErrDone) {
					break
				}
				if err != nil {
					log.Fatal(err) // a canceled query would match plan.ErrCanceled here
				}
				n++
				fmt.Printf("  %-42s %s:%d\n", r.File.Name, r.File.Host, r.File.Port)
			}
			stats := rs.Stats()
			rs.Close()
			cancel()
			fmt.Printf("  -> %d results (%d msgs, %.1f KB)\n", n, stats.Messages, float64(stats.Bytes)/1024)
		}
	}

	// 5. Early termination: ask for one result and cancel the rest of the
	// work — the stream stops fetching items once the limit is reached.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	rs, err := search.QueryContext(ctx, piersearch.Query{Text: "madonna", Strategy: piersearch.StrategyJoin, Limit: 1})
	if err != nil {
		log.Fatal(err)
	}
	if r, err := rs.Next(); err == nil {
		fmt.Printf("\nfirst madonna hit, then stop: %s (%s)\n", r.File.Name, r.File.Host)
	}
	rs.Close()

	// 6. The client/daemon split: serve node 20's engine as a query-service
	// daemon on a real TCP socket, then search it from a client that holds
	// no DHT node at all — the paper's deployment shape, where queries are
	// handed to the network instead of executed by the caller's library.
	ln, err := wire.Listen("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	daemon := service.NewServer(ln, search,
		piersearch.NewPublisher(engines[20], piersearch.ModeBoth, piersearch.Tokenizer{}),
		service.Options{MaxQueries: 8})
	go daemon.Serve() //nolint:errcheck // closed below
	defer daemon.Close()

	client := service.Dial(daemon.Addr())
	defer client.Close()
	plan, err := client.Explain(context.Background(), piersearch.Query{Text: "madonna prayer", Strategy: piersearch.StrategyJoin})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ndaemon %s would run:\n%s\n", daemon.Addr(), plan)

	remote, err := client.Query(context.Background(), piersearch.Query{Text: "madonna prayer", Strategy: piersearch.StrategyJoin})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nresults streamed from the daemon over TCP:")
	for {
		r, err := remote.Next()
		if errors.Is(err, piersearch.ErrDone) {
			break
		}
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-42s %s:%d\n", r.File.Name, r.File.Host, r.File.Port)
	}
	stats := remote.Stats()
	remote.Close()
	fmt.Printf("  -> daemon spent %d msgs, %.1f KB answering\n", stats.Messages, float64(stats.Bytes)/1024)
}
