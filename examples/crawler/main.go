// Crawler: reproduce the §4.1 topology crawl on a synthetic 100k-host
// Gnutella overlay — network-size estimation from parallel neighbour-list
// crawling, plus the flooding-overhead analysis of Figure 8 on the crawled
// graph.
//
//	go run ./examples/crawler
package main

import (
	"fmt"
	"log"

	"piersearch/internal/gnutella"
)

func main() {
	log.SetFlags(0)

	// ~100k hosts as in the paper's crawl; a mix of new (32-neighbour,
	// 30-leaf) and old (6-neighbour, 75-leaf) ultrapeer generations.
	topo, err := gnutella.NewTopology(gnutella.TopologyConfig{
		Ultrapeers:    20000,
		Hosts:         100000,
		NewClientFrac: 0.1,
		Seed:          1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("overlay: %d hosts, %d ultrapeers, avg ultrapeer degree %.1f\n\n",
		topo.NumHosts(), topo.NumUltrapeers(), topo.AvgDegree())

	// Crawl from 30 seeds, like the PlanetLab crawler fleet. Not every
	// node responds, so the result is a lower bound on the network size.
	seeds := make([]gnutella.HostID, 30)
	for i := range seeds {
		seeds[i] = i * 601
	}
	res := gnutella.Crawl(topo, gnutella.CrawlConfig{Seeds: seeds, RespondProb: 0.85, Seed: 2})
	fmt.Printf("crawl: %d requests, %d ultrapeers seen (%d responded), %d leaves\n",
		res.Requests, res.UltrapeersSeen, res.UltrapeersResponded, res.LeavesSeen)
	fmt.Printf("estimated network size (lower bound): %d hosts in ~%v\n\n",
		res.HostsSeen(), res.EstimatedDuration)

	// Figure 8 on this graph: flooding messages vs ultrapeers reached.
	fmt.Println("flooding overhead from ultrapeer 0 (duplicate-suppressed):")
	fmt.Printf("%6s %12s %12s %16s\n", "TTL", "messages", "visited", "msgs/new node")
	prev := gnutella.FloodCost{}
	for _, c := range gnutella.FloodCosts(topo, 0, 8) {
		marginal := "-"
		if c.Visited > prev.Visited {
			marginal = fmt.Sprintf("%.1f", float64(c.Messages-prev.Messages)/float64(c.Visited-prev.Visited))
		}
		fmt.Printf("%6d %12d %12d %16s\n", c.TTL, c.Messages, c.Visited, marginal)
		prev = c
	}
}
