// Raresearch: the paper's motivating scenario. A Gnutella overlay shares a
// long-tailed library; flooding answers popular queries quickly but misses
// or delays rare items, while a DHT partial index over the rare items
// answers them reliably. Compare the two side by side.
//
//	go run ./examples/raresearch
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"piersearch/internal/dht"
	"piersearch/internal/gnutella"
	"piersearch/internal/hybrid"
	"piersearch/internal/pier"
	"piersearch/internal/piersearch"
	"piersearch/internal/trace"
)

func main() {
	log.SetFlags(0)

	// A 3,000-host overlay sharing a calibrated long-tailed library.
	tr := trace.Generate(trace.Config{
		DistinctFiles: 4000, TargetCopies: 13000, Hosts: 3000,
		Vocabulary: 3000, Queries: 50, Seed: 7,
	})
	topo, err := gnutella.NewTopology(gnutella.TopologyConfig{Ultrapeers: 100, Hosts: 3000, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	lib := gnutella.NewLibrary(topo, piersearch.Tokenizer{})
	for rank, hosts := range tr.Placement(3000) {
		for _, h := range hosts {
			lib.AddFile(int(h), gnutella.SharedFile{Name: tr.Files[rank].Name, Size: 3_000_000})
		}
	}
	gnet := gnutella.NewNetwork(topo, lib, gnutella.NetworkConfig{DynamicQuery: true, MaxTTL: 2, Seed: 7})

	// Ten hybrid ultrapeers share a DHT and proactively publish the rare
	// files of their own subtrees (TF scheme over global term stats).
	cluster, err := dht.NewCluster(10, 7, dht.Config{})
	if err != nil {
		log.Fatal(err)
	}
	termFreq := tr.TermInstanceFrequency()
	tk := piersearch.Tokenizer{}
	var hybrids []*hybrid.Ultrapeer
	for i := 0; i < 10; i++ {
		engine := pier.NewEngine(cluster.Nodes[i], pier.Config{OrderBySelectivity: true})
		piersearch.RegisterSchemas(engine)
		h := hybrid.NewUltrapeer(gnutella.HostID(i), gnet, lib, engine, hybrid.UltrapeerConfig{Seed: 7})
		for _, host := range topo.HostsOf(h.Host) {
			for _, sf := range lib.Files(host) {
				for _, term := range tk.Tokenize(sf.Name) {
					if termFreq[term] <= 30 {
						if err := h.PublishLocal(host); err != nil {
							log.Fatal(err)
						}
						break
					}
				}
			}
		}
		hybrids = append(hybrids, h)
	}
	published := 0
	for _, h := range hybrids {
		published += h.PublishCount
	}
	fmt.Printf("hybrid fleet published %d rare files into the DHT\n\n", published)

	// A popular query and a rare one, through the hybrid path.
	popular := tr.Queries[0]
	for _, q := range tr.Queries {
		if tr.Files[q.TargetRank].Replicas > tr.Files[popular.TargetRank].Replicas {
			popular = q
		}
	}
	report := func(label string, q trace.Query, out hybrid.Outcome) {
		target := tr.Files[q.TargetRank]
		fmt.Printf("%-8s query %-30q (target has %d replicas)\n", label, q.Text, target.Replicas)
		fmt.Printf("         answered by %-8s  %d results, first result after %v\n\n",
			out.Source, out.Results, out.FirstLatency)
	}

	// Each hybrid query runs under its own deadline: the PIERSearch
	// reissue (the wide-area leg) is cancelable/deadlined, so an
	// impatient client can give up without leaking the in-flight DHT
	// work.
	queryWithDeadline := func(q trace.Query) (hybrid.Outcome, error) {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		return hybrids[0].QueryContext(ctx, q.Text, q.Terms)
	}

	out, err := queryWithDeadline(popular)
	if err != nil {
		log.Fatal(err)
	}
	report("popular", popular, out)

	// Walk the rare-target queries until one escapes the flooding horizon
	// and is rescued by the DHT index.
	for _, q := range tr.Queries {
		if tr.Files[q.TargetRank].Replicas > 2 {
			continue
		}
		out, err := queryWithDeadline(q)
		if err != nil {
			log.Fatal(err)
		}
		report("rare", q, out)
		if out.Source == hybrid.SourcePIER {
			fmt.Println("flooding missed this item; the PIERSearch partial index answered it.")
			break
		}
	}
}
