// Command hybrid-model reproduces the paper's analytical-model experiments
// (§6.2, Figures 9–12): find-probability bounds, publishing overhead, and
// recall as a function of the replica threshold, with complete knowledge
// of replica counts.
//
// Usage:
//
//	hybrid-model [-scale 0.25] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"log"

	"piersearch/internal/experiments"
	"piersearch/internal/metrics"
)

func main() {
	scale := flag.Float64("scale", 0.25, "study scale relative to the paper's trace")
	seed := flag.Int64("seed", 1, "deterministic seed")
	flag.Parse()
	log.SetFlags(0)

	env, err := experiments.NewStudyEnv(experiments.StudyConfig{Scale: *scale, Seed: *seed})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("model over %d hosts, %d file instances (%d distinct), %d queries\n\n",
		env.Trace.Cfg.Hosts, env.Trace.TotalInstances(), len(env.Trace.Files), len(env.Trace.Queries))

	fmt.Println("== Figure 9: PF-threshold vs replica threshold (Equation 2) ==")
	fmt.Println(metrics.Table("threshold", experiments.Figure9(env)...))

	fmt.Println("== Figure 10: publishing overhead (% items) vs replica threshold ==")
	fmt.Println("   (paper anchor: threshold 1 publishes 23% of items)")
	fmt.Println(metrics.Table("threshold", experiments.Figure10(env)))

	fmt.Println("== Figure 11: average query recall (QR) vs replica threshold ==")
	fmt.Println("   (paper: threshold 1 -> 47/52/61%; threshold 2 -> >64%)")
	fmt.Println(metrics.Table("threshold", experiments.Figure11(env)...))

	fmt.Println("== Figure 12: average query distinct recall (QDR) vs replica threshold ==")
	fmt.Println("   (paper: thresholds 1-2 at horizon 15% -> QR 68%, QDR 93%)")
	fmt.Println(metrics.Table("threshold", experiments.Figure12(env)...))
}
