// Command piersearch runs a standalone PIERSearch node over real TCP: it
// serves a Kademlia DHT node, joins an existing network, publishes shared
// files and answers keyword queries — the building block of the paper's
// hybrid ultrapeer, runnable by hand.
//
// Start a first node with a persistent on-disk store:
//
//	piersearch -listen 127.0.0.1:4000 -store disk -data-dir /var/lib/piersearch -daemon
//
// Join it, publish and search:
//
//	piersearch -listen 127.0.0.1:4001 -join 127.0.0.1:4000 \
//	    -publish "Madonna - Like a Prayer.mp3" -publish "Rare Demo Tape.mp3"
//	piersearch -listen 127.0.0.1:4002 -join 127.0.0.1:4000 -search "rare demo"
//
// A disk-backed daemon that is restarted with the same -data-dir recovers
// its replicas from the write-ahead log and serves them without anyone
// republishing. SIGINT/SIGTERM shut the node down cleanly: the WAL is
// flushed and fsynced and the directory lock released.
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"piersearch/internal/dht"
	"piersearch/internal/pier"
	"piersearch/internal/piersearch"
	"piersearch/internal/store"
	"piersearch/internal/wire"
)

type publishList []string

func (p *publishList) String() string     { return strings.Join(*p, ",") }
func (p *publishList) Set(v string) error { *p = append(*p, v); return nil }

// main delegates to run so the deferred shutdown path (flush the WAL,
// fsync, release the lock file) executes before the process exits with a
// meaningful status code — log.Fatalf would skip the defers.
func main() {
	os.Exit(run())
}

func run() int {
	listen := flag.String("listen", "127.0.0.1:0", "TCP listen address")
	join := flag.String("join", "", "address of an existing node to bootstrap from")
	search := flag.String("search", "", "run one keyword query and exit")
	strategy := flag.String("strategy", "cache", "query strategy: cache or join")
	daemon := flag.Bool("daemon", false, "keep serving after startup (SIGINT/SIGTERM to stop)")
	stdinPublish := flag.Bool("stdin", false, "publish one filename per stdin line")
	storeKind := flag.String("store", "mem", "local value store: mem or disk")
	dataDir := flag.String("data-dir", "piersearch-data", "directory for the disk store's WAL and segments")
	syncWrites := flag.Bool("sync", false, "fsync every group commit (disk store only)")
	var publishes publishList
	flag.Var(&publishes, "publish", "filename to publish (repeatable)")
	flag.Parse()
	log.SetFlags(0)

	// One context for the whole process: the first SIGINT/SIGTERM cancels
	// in-flight queries and unblocks the daemon wait so the deferred
	// shutdown path runs — the disk store must flush its WAL, fsync and
	// release its lock file rather than die mid-commit.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	ln, err := wire.Listen(*listen)
	if err != nil {
		log.Printf("listen: %v", err)
		return 1
	}

	cfg := dht.Config{Logf: log.Printf}
	switch *storeKind {
	case "mem":
	case "disk":
		d, err := store.Open(*dataDir, store.Options{Sync: *syncWrites, Logf: log.Printf})
		if err != nil {
			log.Printf("open disk store: %v", err)
			return 1
		}
		if rec := d.Recovery(); rec.Values > 0 {
			log.Printf("recovered %d values from %s", rec.Values, *dataDir)
		}
		cfg.NewStorage = func(dht.NodeInfo) (dht.Storage, error) { return d, nil }
	default:
		log.Printf("unknown -store %q (want mem or disk)", *storeKind)
		return 1
	}
	transport := wire.NewTCPTransport()
	node := dht.NewNode(dht.NodeInfo{ID: dht.RandomID(), Addr: ln.Addr().String()}, transport, cfg)
	srv := wire.NewServer(node, ln)
	go srv.Serve()                                //nolint:errcheck // closed below
	stopJanitor := node.StartJanitor(time.Minute) // reclaim TTL'd postings while serving
	defer func() {
		// Shutdown order: stop serving and calling first, then close the
		// store so nothing writes to it afterwards.
		stopJanitor()
		srv.Close()       //nolint:errcheck // shutting down
		transport.Close() //nolint:errcheck // shutting down
		if err := node.Close(); err != nil {
			log.Printf("close store: %v", err)
		}
		if js := node.JanitorStats(); js.Reclaimed > 0 {
			log.Printf("janitor reclaimed %d expired entries over %d sweeps", js.Reclaimed, js.Sweeps)
		}
	}()
	log.Printf("node %s listening on %s (%s store)", node.Info().ID.Short(), srv.Addr(), *storeKind)

	engine := pier.NewEngine(node, pier.Config{OrderBySelectivity: true})
	piersearch.RegisterSchemas(engine)

	if *join != "" {
		// The seed's ID is learned from its ping response; bootstrap only
		// needs its address.
		seed := dht.NodeInfo{Addr: *join}
		resp, err := transport.Call(seed, &dht.Request{Kind: dht.RPCPing, From: node.Info()})
		if err != nil {
			log.Printf("join %s: %v", *join, err)
			return 1
		}
		if err := node.Bootstrap(resp.From); err != nil {
			log.Printf("bootstrap: %v", err)
			return 1
		}
		log.Printf("joined network via %s (%d contacts)", *join, node.TableLen())
	}

	pub := piersearch.NewPublisher(engine, piersearch.ModeBoth, piersearch.Tokenizer{})
	publishOne := func(name string) {
		f := piersearch.File{Name: name, Size: int64(len(name)) * 1000, Host: srv.Addr(), Port: 6346}
		stats, err := pub.Publish(f)
		if err != nil {
			log.Printf("publish %q: %v", name, err)
			return
		}
		log.Printf("published %q: %d tuples, %d bytes", name, stats.Tuples, stats.Bytes)
	}
	for _, name := range publishes {
		publishOne(name)
	}
	if *stdinPublish {
		sc := bufio.NewScanner(os.Stdin)
		for sc.Scan() && ctx.Err() == nil {
			if line := strings.TrimSpace(sc.Text()); line != "" {
				publishOne(line)
			}
		}
	}

	if *search != "" {
		strat := piersearch.StrategyCache
		if *strategy == "join" {
			strat = piersearch.StrategyJoin
		}
		// A signal cancels the in-flight wide-area query; results stream
		// as they arrive instead of materializing at the end.
		rs, err := piersearch.NewSearch(engine, piersearch.Tokenizer{}).
			QueryContext(ctx, piersearch.Query{Text: *search, Strategy: strat, Limit: 50})
		if err != nil {
			log.Printf("search: %v", err)
			return 1
		}
		n := 0
		for {
			r, err := rs.Next()
			if errors.Is(err, piersearch.ErrDone) {
				break
			}
			if err != nil {
				rs.Close()
				log.Printf("search: %v", err)
				return 1
			}
			n++
			fmt.Printf("  %-50s %10d bytes  %s:%d\n", r.File.Name, r.File.Size, r.File.Host, r.File.Port)
		}
		stats := rs.Stats()
		rs.Close()
		fmt.Printf("%d results for %q (%v, %d msgs, %d bytes)\n", n, *search, strat, stats.Messages, stats.Bytes)
	}

	if *daemon {
		<-ctx.Done()
		log.Println("shutting down")
	}
	return 0
}
