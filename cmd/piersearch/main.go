// Command piersearch runs a standalone PIERSearch node over real TCP: it
// serves a Kademlia DHT node, joins an existing network, publishes shared
// files and answers keyword queries — the building block of the paper's
// hybrid ultrapeer, runnable by hand.
//
// Start a first node:
//
//	piersearch -listen 127.0.0.1:4000 -daemon
//
// Join it, publish and search:
//
//	piersearch -listen 127.0.0.1:4001 -join 127.0.0.1:4000 \
//	    -publish "Madonna - Like a Prayer.mp3" -publish "Rare Demo Tape.mp3"
//	piersearch -listen 127.0.0.1:4002 -join 127.0.0.1:4000 -search "rare demo"
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"time"

	"piersearch/internal/dht"
	"piersearch/internal/pier"
	"piersearch/internal/piersearch"
	"piersearch/internal/wire"
)

type publishList []string

func (p *publishList) String() string     { return strings.Join(*p, ",") }
func (p *publishList) Set(v string) error { *p = append(*p, v); return nil }

func main() {
	listen := flag.String("listen", "127.0.0.1:0", "TCP listen address")
	join := flag.String("join", "", "address of an existing node to bootstrap from")
	search := flag.String("search", "", "run one keyword query and exit")
	strategy := flag.String("strategy", "cache", "query strategy: cache or join")
	daemon := flag.Bool("daemon", false, "keep serving after startup (Ctrl-C to stop)")
	stdinPublish := flag.Bool("stdin", false, "publish one filename per stdin line")
	var publishes publishList
	flag.Var(&publishes, "publish", "filename to publish (repeatable)")
	flag.Parse()
	log.SetFlags(0)

	ln, err := wire.Listen(*listen)
	if err != nil {
		log.Fatalf("listen: %v", err)
	}
	transport := wire.NewTCPTransport()
	defer transport.Close()
	node := dht.NewNode(dht.NodeInfo{ID: dht.RandomID(), Addr: ln.Addr().String()}, transport, dht.Config{})
	srv := wire.NewServer(node, ln)
	go srv.Serve() //nolint:errcheck // closed below
	defer srv.Close()
	stopJanitor := node.StartJanitor(time.Minute) // reclaim TTL'd postings while serving
	defer stopJanitor()
	log.Printf("node %s listening on %s", node.Info().ID.Short(), srv.Addr())

	engine := pier.NewEngine(node, pier.Config{OrderBySelectivity: true})
	piersearch.RegisterSchemas(engine)

	if *join != "" {
		// The seed's ID is learned from its ping response; bootstrap only
		// needs its address.
		seed := dht.NodeInfo{Addr: *join}
		resp, err := transport.Call(seed, &dht.Request{Kind: dht.RPCPing, From: node.Info()})
		if err != nil {
			log.Fatalf("join %s: %v", *join, err)
		}
		if err := node.Bootstrap(resp.From); err != nil {
			log.Fatalf("bootstrap: %v", err)
		}
		log.Printf("joined network via %s (%d contacts)", *join, node.TableLen())
	}

	pub := piersearch.NewPublisher(engine, piersearch.ModeBoth, piersearch.Tokenizer{})
	publishOne := func(name string) {
		f := piersearch.File{Name: name, Size: int64(len(name)) * 1000, Host: srv.Addr(), Port: 6346}
		stats, err := pub.Publish(f)
		if err != nil {
			log.Printf("publish %q: %v", name, err)
			return
		}
		log.Printf("published %q: %d tuples, %d bytes", name, stats.Tuples, stats.Bytes)
	}
	for _, name := range publishes {
		publishOne(name)
	}
	if *stdinPublish {
		sc := bufio.NewScanner(os.Stdin)
		for sc.Scan() {
			if line := strings.TrimSpace(sc.Text()); line != "" {
				publishOne(line)
			}
		}
	}

	if *search != "" {
		strat := piersearch.StrategyCache
		if *strategy == "join" {
			strat = piersearch.StrategyJoin
		}
		// Ctrl-C cancels the in-flight wide-area query; results stream as
		// they arrive instead of materializing at the end.
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
		defer stop()
		rs, err := piersearch.NewSearch(engine, piersearch.Tokenizer{}).
			QueryContext(ctx, piersearch.Query{Text: *search, Strategy: strat, Limit: 50})
		if err != nil {
			log.Fatalf("search: %v", err)
		}
		n := 0
		for {
			r, err := rs.Next()
			if errors.Is(err, piersearch.ErrDone) {
				break
			}
			if err != nil {
				rs.Close()
				log.Fatalf("search: %v", err)
			}
			n++
			fmt.Printf("  %-50s %10d bytes  %s:%d\n", r.File.Name, r.File.Size, r.File.Host, r.File.Port)
		}
		stats := rs.Stats()
		rs.Close()
		fmt.Printf("%d results for %q (%v, %d msgs, %d bytes)\n", n, *search, strat, stats.Messages, stats.Bytes)
	}

	if *daemon {
		ch := make(chan os.Signal, 1)
		signal.Notify(ch, os.Interrupt)
		<-ch
		log.Println("shutting down")
	}
}
