// Command piersearch is both halves of the network query service.
//
// Daemon mode runs a standalone PIERSearch node over real TCP: it serves
// a Kademlia DHT node, joins an existing network, publishes shared files,
// and — with -serve — answers the streaming query-service protocol so
// remote clients can search without joining the DHT:
//
//	piersearch -listen 127.0.0.1:4000 -serve 127.0.0.1:4100 \
//	    -store disk -data-dir /var/lib/piersearch -max-queries 32 -daemon
//
// More nodes join the DHT side and publish:
//
//	piersearch -listen 127.0.0.1:4001 -join 127.0.0.1:4000 \
//	    -publish "Madonna - Like a Prayer.mp3" -publish "Rare Demo Tape.mp3"
//
// -bootstrap joins through several seeds at once (any reachable one
// suffices) and is the preferred form for long-running daemons; the
// iterative self-lookup it performs fills the routing table beyond the
// seeds themselves. A running daemon dumps its routing table and
// maintenance counters to the log on SIGUSR1:
//
//	piersearch -listen 127.0.0.1:4002 -bootstrap 127.0.0.1:4000,127.0.0.1:4001 -daemon
//	kill -USR1 $(pidof piersearch)
//
// -debug-addr starts the live telemetry plane: an HTTP listener serving
// /metrics (every registered counter, gauge and histogram as text),
// /traces (recent distributed traces, rendered as trees), /healthz, and
// net/http/pprof under /debug/pprof/:
//
//	piersearch -listen 127.0.0.1:4000 -serve 127.0.0.1:4100 \
//	    -debug-addr 127.0.0.1:6060 -daemon
//	curl -s localhost:6060/metrics
//
// -trace records distributed spans for every query this process runs or
// submits and prints the assembled trace tree after -search results.
//
// Client mode (-connect) is the other half of the split: a thin process
// that never joins the DHT. It submits queries and publishes to a daemon
// over the streaming protocol; results print as the daemon's plan
// produces them:
//
//	piersearch -connect 127.0.0.1:4100 -search "rare demo"
//	piersearch -connect 127.0.0.1:4100 -search "rare demo" -explain
//	piersearch -connect 127.0.0.1:4100 -publish "My Shared Mix.mp3"
//
// A disk-backed daemon that is restarted with the same -data-dir recovers
// its replicas from the write-ahead log and serves them without anyone
// republishing. SIGINT/SIGTERM shut the node down cleanly: the WAL is
// flushed and fsynced and the directory lock released.
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"piersearch/internal/dht"
	"piersearch/internal/hotcache"
	"piersearch/internal/pier"
	"piersearch/internal/piersearch"
	"piersearch/internal/service"
	"piersearch/internal/store"
	"piersearch/internal/telemetry"
	"piersearch/internal/wire"
)

type publishList []string

func (p *publishList) String() string     { return strings.Join(*p, ",") }
func (p *publishList) Set(v string) error { *p = append(*p, v); return nil }

// main delegates to run so the deferred shutdown path (flush the WAL,
// fsync, release the lock file) executes before the process exits with a
// meaningful status code — log.Fatalf would skip the defers.
func main() {
	os.Exit(run())
}

func run() int {
	listen := flag.String("listen", "127.0.0.1:0", "TCP listen address for the DHT node (daemon mode)")
	join := flag.String("join", "", "address of an existing node to bootstrap from")
	bootstrap := flag.String("bootstrap", "", "comma-separated addresses of existing nodes to join through (multi-seed bootstrap)")
	serve := flag.String("serve", "", "TCP listen address for the query service (empty = not served)")
	connect := flag.String("connect", "", "query-service daemon to talk to (client mode: no DHT node is started)")
	search := flag.String("search", "", "run one keyword query and exit")
	strategy := flag.String("strategy", "cache", "query strategy: cache or join")
	limit := flag.Int("limit", 50, "max results per query")
	explain := flag.Bool("explain", false, "print the query plan before the results")
	maxQueries := flag.Int("max-queries", 64, "admission control: concurrent queries the daemon executes before shedding")
	daemon := flag.Bool("daemon", false, "keep serving after startup (SIGINT/SIGTERM to stop)")
	stdinPublish := flag.Bool("stdin", false, "publish one filename per stdin line")
	storeKind := flag.String("store", "mem", "local value store: mem or disk")
	dataDir := flag.String("data-dir", "piersearch-data", "directory for the disk store's WAL and segments")
	syncWrites := flag.Bool("sync", false, "fsync every group commit (disk store only)")
	cache := flag.Bool("cache", true, "hot-key tier: posting/result cache, singleflight, replica fan-out")
	cacheBytes := flag.Int64("cache-bytes", 32<<20, "hot-key cache budget in bytes")
	cacheTTL := flag.Duration("cache-ttl", 30*time.Second, "hot-key cache entry TTL")
	perClientQPS := flag.Int("per-client-qps", 0, "admission control: per-client queries+publishes/s (0 disables)")
	perClientBurst := flag.Int("per-client-burst", 0, "per-client burst allowance (0 = same as -per-client-qps)")
	debugAddr := flag.String("debug-addr", "", "HTTP listen address for /metrics, /traces, /healthz and pprof (empty = off)")
	trace := flag.Bool("trace", false, "record distributed trace spans; -search prints the trace tree")
	logLevel := flag.String("log-level", "info", "minimum log level: debug, info, warn or error")
	var publishes publishList
	flag.Var(&publishes, "publish", "filename to publish (repeatable)")
	flag.Parse()

	logger := telemetry.NewTextLogger(os.Stderr, telemetry.ParseLevel(*logLevel))

	// One context for the whole process: the first SIGINT/SIGTERM cancels
	// in-flight queries and unblocks the daemon wait so the deferred
	// shutdown path runs — the disk store must flush its WAL, fsync and
	// release its lock file rather than die mid-commit.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	strat := piersearch.StrategyCache
	if *strategy == "join" {
		strat = piersearch.StrategyJoin
	}

	if *connect != "" {
		return runClient(ctx, clientConfig{
			addr: *connect, search: *search, strat: strat, limit: *limit, explain: *explain,
			publishes: publishes, stdinPublish: *stdinPublish, trace: *trace, logger: logger,
		})
	}
	return runDaemon(ctx, daemonConfig{
		listen: *listen, join: *join, bootstrap: *bootstrap, serve: *serve, search: *search,
		strat: strat, limit: *limit, explain: *explain, maxQueries: *maxQueries,
		daemon: *daemon, stdinPublish: *stdinPublish, storeKind: *storeKind,
		dataDir: *dataDir, syncWrites: *syncWrites, publishes: publishes,
		cache: *cache, cacheBytes: *cacheBytes, cacheTTL: *cacheTTL,
		perClientQPS: *perClientQPS, perClientBurst: *perClientBurst,
		debugAddr: *debugAddr, trace: *trace, logger: logger,
	})
}

// --- client mode -------------------------------------------------------------

type clientConfig struct {
	addr, search string
	strat        piersearch.Strategy
	limit        int
	explain      bool
	publishes    publishList
	stdinPublish bool
	trace        bool
	logger       *telemetry.Logger
}

// runClient is the thin half of the client/daemon split: it talks the
// streaming query-service protocol to a daemon and never touches the DHT.
func runClient(ctx context.Context, cc clientConfig) int {
	logger := cc.logger
	client := service.Dial(cc.addr)
	defer client.Close()
	if cc.trace {
		client.Tracer = telemetry.NewTracer("client")
	}

	host, err := os.Hostname()
	if err != nil || host == "" {
		host = "localhost"
	}
	publishOne := func(name string) bool {
		f := piersearch.File{Name: name, Size: int64(len(name)) * 1000, Host: host, Port: 6346}
		stats, err := client.Publish(ctx, f, piersearch.ModeBoth)
		if err != nil {
			logger.Error("publish failed", "file", name, "err", err)
			return false
		}
		logger.Info("published", "file", name, "daemon", cc.addr, "tuples", stats.Tuples, "bytes", stats.Bytes)
		return true
	}
	for _, name := range cc.publishes {
		if !publishOne(name) {
			return 1
		}
	}
	if cc.stdinPublish {
		sc := bufio.NewScanner(os.Stdin)
		for sc.Scan() && ctx.Err() == nil {
			if line := strings.TrimSpace(sc.Text()); line != "" {
				publishOne(line)
			}
		}
	}

	if cc.search != "" {
		q := piersearch.Query{Text: cc.search, Strategy: cc.strat, Limit: cc.limit}
		if cc.explain {
			text, err := client.Explain(ctx, q)
			if err != nil {
				logger.Error("explain failed", "err", err)
				return 1
			}
			fmt.Printf("plan for %q on %s:\n%s\n", cc.search, cc.addr, text)
		}
		rs, err := client.Query(ctx, q)
		if err != nil {
			logger.Error("search failed", "err", err)
			return 1
		}
		defer rs.Close()
		if code := printResults(rs, cc.search, cc.strat, cc.trace, logger); code != 0 {
			return code
		}
	}
	return 0
}

// printResults streams a result set to stdout, then its cost line and —
// when tracing — the assembled distributed trace tree.
func printResults(rs *piersearch.ResultStream, query string, strat piersearch.Strategy, trace bool, logger *telemetry.Logger) int {
	n := 0
	for {
		r, err := rs.Next()
		if errors.Is(err, piersearch.ErrDone) {
			break
		}
		if err != nil {
			logger.Error("search failed", "err", err)
			return 1
		}
		n++
		fmt.Printf("  %-50s %10d bytes  %s:%d\n", r.File.Name, r.File.Size, r.File.Host, r.File.Port)
	}
	stats := rs.Stats()
	fmt.Printf("%d results for %q (%v, %d msgs, %d bytes, %v)\n",
		n, query, strat, stats.Messages, stats.Bytes, stats.Wall.Round(time.Millisecond))
	if trace {
		if spans := rs.Trace(); len(spans) > 0 {
			fmt.Printf("trace (%d spans across %d nodes):\n%s", len(spans), telemetry.TraceNodes(spans), telemetry.RenderTree(spans))
		}
	}
	return 0
}

// --- daemon mode -------------------------------------------------------------

type daemonConfig struct {
	listen, join, bootstrap       string
	serve, search                 string
	strat                         piersearch.Strategy
	limit, maxQueries             int
	explain, daemon, stdinPublish bool
	storeKind, dataDir            string
	syncWrites                    bool
	publishes                     publishList

	cache                        bool
	cacheBytes                   int64
	cacheTTL                     time.Duration
	perClientQPS, perClientBurst int

	debugAddr string
	trace     bool
	logger    *telemetry.Logger
}

func runDaemon(ctx context.Context, dc daemonConfig) int {
	logger := dc.logger
	ln, err := wire.Listen(dc.listen)
	if err != nil {
		logger.Error("listen failed", "addr", dc.listen, "err", err)
		return 1
	}

	// The telemetry plane: one registry every subsystem registers into,
	// and — when tracing or the debug listener is on — one span ring the
	// whole process shares.
	reg := telemetry.NewRegistry()
	var tracer *telemetry.Tracer
	if dc.trace || dc.debugAddr != "" {
		tracer = telemetry.NewTracer(ln.Addr().String())
	}

	cfg := dht.Config{Logger: logger.With("sub", "dht"), Tracer: tracer, Metrics: reg}
	switch dc.storeKind {
	case "mem":
	case "disk":
		d, err := store.Open(dc.dataDir, store.Options{
			Sync:    dc.syncWrites,
			Logger:  logger.With("sub", "store"),
			Tracer:  tracer,
			Metrics: reg,
		})
		if err != nil {
			logger.Error("open disk store failed", "dir", dc.dataDir, "err", err)
			return 1
		}
		if rec := d.Recovery(); rec.Values > 0 {
			logger.Info("recovered store", "values", rec.Values, "dir", dc.dataDir)
		}
		cfg.NewStorage = func(dht.NodeInfo) (dht.Storage, error) { return d, nil }
	default:
		logger.Error("unknown -store (want mem or disk)", "store", dc.storeKind)
		return 1
	}
	transport := wire.NewTCPTransport()
	node := dht.NewNode(dht.NodeInfo{ID: dht.RandomID(), Addr: ln.Addr().String()}, transport, cfg)
	srv := wire.NewServer(node, ln)
	go srv.Serve()                                //nolint:errcheck // closed below
	stopJanitor := node.StartJanitor(time.Minute) // reclaim TTL'd postings while serving
	stopMaint := node.StartMaintenance()          // bucket refresh + provider republish
	defer func() {
		// Shutdown order: stop serving and calling first, then close the
		// store so nothing writes to it afterwards.
		stopMaint()
		stopJanitor()
		srv.Close()       //nolint:errcheck // shutting down
		transport.Close() //nolint:errcheck // shutting down
		if err := node.Close(); err != nil {
			logger.Error("close store failed", "err", err)
		}
		if js := node.JanitorStats(); js.Reclaimed > 0 {
			logger.Info("janitor totals", "reclaimed", js.Reclaimed, "sweeps", js.Sweeps)
		}
	}()
	logger.Info("node listening", "id", node.Info().ID.Short(), "addr", srv.Addr(), "store", dc.storeKind)

	engine := pier.NewEngine(node, pier.Config{OrderBySelectivity: true})
	piersearch.RegisterSchemas(engine)
	var tier *hotcache.Tier
	if dc.cache {
		tier = hotcache.NewTier(hotcache.Options{
			MaxBytes: dc.cacheBytes,
			TTL:      dc.cacheTTL,
		})
		tier.RegisterMetrics(reg)
		engine.SetHotTier(tier)
		logger.Info("hot-key tier on", "budget_mib", dc.cacheBytes>>20, "ttl", dc.cacheTTL)
	}

	// The debug listener serves the same registry and span ring the
	// SIGUSR1 snapshot reads: /metrics, /traces, /healthz, pprof.
	if dc.debugAddr != "" {
		dln, stopDebug, err := telemetry.ListenDebug(dc.debugAddr, reg, tracer)
		if err != nil {
			logger.Error("debug listener failed", "addr", dc.debugAddr, "err", err)
			return 1
		}
		defer stopDebug()
		logger.Info("debug endpoints on", "addr", dln.Addr().String())
	}

	// SIGUSR1 dumps one structured snapshot without disturbing the node:
	// the full metrics registry (the same text /metrics serves — routing
	// occupancy, maintenance counters, hotcache TierStats, janitor
	// totals) followed by the routing table.
	usr1 := make(chan os.Signal, 1)
	signal.Notify(usr1, syscall.SIGUSR1)
	defer signal.Stop(usr1)
	go func() {
		for range usr1 {
			var b strings.Builder
			b.WriteString("=== metrics ===\n")
			reg.WriteText(&b) //nolint:errcheck // strings.Builder cannot fail
			b.WriteString("=== routing ===\n")
			b.WriteString(node.RoutingStats().Format())
			fmt.Fprint(os.Stderr, b.String())
		}
	}()

	searcher := piersearch.NewSearch(engine, piersearch.Tokenizer{})
	pub := piersearch.NewPublisher(engine, piersearch.ModeBoth, piersearch.Tokenizer{})

	// The query service: remote clients search and publish through this
	// node without joining the DHT themselves.
	if dc.serve != "" {
		svcLn, err := wire.Listen(dc.serve)
		if err != nil {
			logger.Error("serve listen failed", "addr", dc.serve, "err", err)
			return 1
		}
		svc := service.NewServer(svcLn, searcher, pub, service.Options{
			MaxQueries:     dc.maxQueries,
			PerClientQPS:   dc.perClientQPS,
			PerClientBurst: dc.perClientBurst,
			Logger:         logger.With("sub", "service"),
			Tracer:         tracer,
			Metrics:        reg,
		})
		go svc.Serve() //nolint:errcheck // closed below
		defer svc.Close()
		logger.Info("query service on", "addr", svc.Addr(), "max_queries", dc.maxQueries)
	}

	// -join and -bootstrap both feed JoinNetwork, which pings each seed
	// (learning its ID from the reply) and then runs an iterative
	// self-lookup to fill the buckets nearest this node. Seeds are given by
	// address alone; any reachable one suffices.
	var seeds []dht.NodeInfo
	if dc.join != "" {
		seeds = append(seeds, dht.NodeInfo{Addr: dc.join})
	}
	for _, a := range strings.Split(dc.bootstrap, ",") {
		if a = strings.TrimSpace(a); a != "" {
			seeds = append(seeds, dht.NodeInfo{Addr: a})
		}
	}
	if len(seeds) > 0 {
		if err := node.JoinNetwork(seeds); err != nil {
			logger.Error("join failed", "err", err)
			return 1
		}
		logger.Info("joined network", "seeds", len(seeds), "contacts", node.TableLen())
	}

	publishOne := func(name string) {
		f := piersearch.File{Name: name, Size: int64(len(name)) * 1000, Host: srv.Addr(), Port: 6346}
		stats, err := pub.PublishFile(f)
		if err != nil {
			logger.Error("publish failed", "file", name, "err", err)
			return
		}
		logger.Info("published", "file", name, "tuples", stats.Tuples, "bytes", stats.Bytes)
	}
	for _, name := range dc.publishes {
		publishOne(name)
	}
	if dc.stdinPublish {
		sc := bufio.NewScanner(os.Stdin)
		for sc.Scan() && ctx.Err() == nil {
			if line := strings.TrimSpace(sc.Text()); line != "" {
				publishOne(line)
			}
		}
	}

	if dc.search != "" {
		q := piersearch.Query{Text: dc.search, Strategy: dc.strat, Limit: dc.limit}
		if dc.explain {
			text, err := searcher.Explain(q)
			if err != nil {
				logger.Error("explain failed", "err", err)
				return 1
			}
			fmt.Printf("plan for %q:\n%s\n", dc.search, text)
			fmt.Printf("routing:\n%s\n", node.RoutingStats().Format())
		}
		// A signal cancels the in-flight wide-area query; results stream
		// as they arrive instead of materializing at the end. This is the
		// same executor the query service runs for remote clients.
		rs, err := searcher.QueryContext(ctx, q)
		if err != nil {
			logger.Error("search failed", "err", err)
			return 1
		}
		defer rs.Close()
		if code := printResults(rs, dc.search, dc.strat, dc.trace, logger); code != 0 {
			return code
		}
	}

	if dc.daemon {
		<-ctx.Done()
		logger.Info("shutting down")
	}
	return 0
}
