// Command deploy reproduces the §7 deployment experiment: a Gnutella
// overlay with 50 hybrid LimeWire/PIERSearch ultrapeers sharing a DHT,
// QRS-based rare-item publishing, and the hybrid timeout query path. It
// reports the §7 measurement set (publish overhead, latencies, per-query
// bandwidth, zero-result reduction) for both PIERSearch strategies, plus
// the §5 posting-list-shipping validation.
//
// Usage:
//
//	deploy [-ups 300] [-hybrids 50] [-warmup 150] [-measure 120] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"log"

	"piersearch/internal/experiments"
	"piersearch/internal/piersearch"
)

func main() {
	ups := flag.Int("ups", 400, "overlay ultrapeers")
	hybrids := flag.Int("hybrids", 50, "hybrid ultrapeers (the deployed fleet)")
	warmup := flag.Int("warmup", 150, "snooped queries during warm-up")
	measure := flag.Int("measure", 120, "measured hybrid leaf queries")
	seed := flag.Int64("seed", 1, "deterministic seed")
	flag.Parse()
	log.SetFlags(0)

	for _, strat := range []piersearch.Strategy{piersearch.StrategyCache, piersearch.StrategyJoin} {
		res, err := experiments.RunDeployment(experiments.DeployConfig{
			Ultrapeers:     *ups,
			HybridCount:    *hybrids,
			WarmupQueries:  *warmup,
			MeasureQueries: *measure,
			Strategy:       strat,
			Seed:           *seed,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("== Deployment, %v strategy ==\n", strat)
		fmt.Printf("D1 publishing:   %d files, %.0f bytes/file (paper: ~3.5 KB, 4 KB with cache)\n",
			res.FilesPublished, res.AvgPublishBytes)
		fmt.Printf("D2 answered:     gnutella %d, pier %d, none %d\n",
			res.GnutellaAnswered, res.PierAnswered, res.Unanswered)
		fmt.Printf("   latency:      gnutella %.1fs, hybrid (30s timeout + pier) %.1fs, late-gnutella %.1fs (paper: ~65s)\n",
			res.AvgGnutellaLatency.Seconds(), res.AvgHybridLatency.Seconds(), res.AvgLateGnutella.Seconds())
		fmt.Printf("D3 query bytes:  %.0f B matching phase (paper: ~850 B cache / ~20 KB join); %.0f B incl. item fetches\n",
			res.AvgPierMatchBytes, res.AvgPierQueryBytes)
		fmt.Printf("D4 zero-result:  baseline %d -> hybrid %d (%.0f%% reduction; paper observed 18%%)\n\n",
			res.ZeroBaseline, res.ZeroHybrid, res.ReductionPct)
	}

	env, err := experiments.NewStudyEnv(experiments.StudyConfig{Scale: 0.1, Seed: *seed})
	if err != nil {
		log.Fatal(err)
	}
	ship, err := experiments.PostingListShipping(env, 32, 8000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("== §5 validation: posting entries shipped per query over a real PIER cluster ==\n")
	fmt.Printf("all queries: %.1f entries   rare (<=10 results): %.1f entries   ratio: %.1fx (paper: 7x)\n",
		ship.AvgShippedAll, ship.AvgShippedRare, ship.Ratio)
}
