// Command gnutella-study reproduces the paper's Gnutella measurement study
// (§4): Figures 4–8, the §4.2 headline aggregates, and the §4.1 crawl.
//
// Usage:
//
//	gnutella-study [-scale 0.25] [-seed 1] [-fig8-ups 20000]
//
// Scale 1.0 is the paper's trace size (75,129 hosts / ~315k files / 700
// queries); smaller scales preserve the distribution shapes.
package main

import (
	"flag"
	"fmt"
	"log"

	"piersearch/internal/experiments"
	"piersearch/internal/metrics"
)

func main() {
	scale := flag.Float64("scale", 0.25, "study scale relative to the paper's trace")
	seed := flag.Int64("seed", 1, "deterministic seed")
	fig8UPs := flag.Int("fig8-ups", 20000, "ultrapeer graph size for Figure 8")
	flag.Parse()
	log.SetFlags(0)

	env, err := experiments.NewStudyEnv(experiments.StudyConfig{Scale: *scale, Seed: *seed})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("study environment: %d hosts, %d ultrapeers, %d file instances (%d distinct), %d queries\n\n",
		env.Topo.NumHosts(), env.Topo.NumUltrapeers(), env.Trace.TotalInstances(),
		len(env.Trace.Files), len(env.Trace.Queries))

	crawl := experiments.CrawlStudy(env)
	fmt.Printf("== Crawl (cf. §4.1: ~100k nodes, ~20M files, 45 minutes) ==\n")
	fmt.Printf("hosts seen: %d   ultrapeers: %d   files shared: %d   est. duration: %v\n\n",
		crawl.HostsSeen, crawl.UltrapeersSeen, crawl.FilesEstimate, crawl.EstimatedDuration)

	fmt.Println("== Figure 4: result-set size vs average replication factor ==")
	f4 := experiments.Figure4(env)
	fmt.Println(metrics.Table("avg-replication", metrics.Series{Name: "results-size", Points: f4.Points}))

	fmt.Println("== Figure 5: result-size CDF (% of queries with <= X results) ==")
	fmt.Println(metrics.Table("results", experiments.Figure5(env)...))

	fmt.Println("== Figure 6: result-size CDF, <= 20 results, growing unions ==")
	fmt.Println(metrics.Table("results", experiments.Figure6(env)...))

	a := experiments.Aggregates(env)
	fmt.Println("== §4.2 aggregates (paper: 41% / 18% single; 27% / 6% union; >=66% reduction) ==")
	fmt.Printf("single node: %.1f%% of queries <= 10 results, %.1f%% with none\n", a.PctAtMost10Single, a.PctZeroSingle)
	fmt.Printf("union-of-30: %.1f%% of queries <= 10 results, %.1f%% with none\n", a.PctAtMost10Union, a.PctZeroUnion)
	fmt.Printf("potential zero-result reduction: %.0f%%\n\n", a.ZeroReductionPct)

	fmt.Println("== Figure 7: result-set size vs first-result latency (seconds) ==")
	f7 := experiments.Figure7(env)
	fmt.Println(metrics.Table("results-size", metrics.Series{Name: "first-result (s)", Points: f7.Points}))

	fmt.Println("== Figure 8: flooding overhead (messages vs ultrapeers visited) ==")
	f8, err := experiments.Figure8(experiments.Figure8Config{Ultrapeers: *fig8UPs, Seed: *seed})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(metrics.Table("messages (k)", f8))
}
