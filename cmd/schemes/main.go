// Command schemes reproduces the rare-item identification comparison (§6.3,
// Figures 13–15): Perfect, SAM, TPF, TF and Random schemes evaluated on
// average query recall and distinct recall against the publishing budget.
//
// Usage:
//
//	schemes [-scale 0.25] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"log"

	"piersearch/internal/experiments"
	"piersearch/internal/metrics"
)

func main() {
	scale := flag.Float64("scale", 0.25, "study scale relative to the paper's trace")
	seed := flag.Int64("seed", 1, "deterministic seed")
	flag.Parse()
	log.SetFlags(0)

	env, err := experiments.NewStudyEnv(experiments.StudyConfig{Scale: *scale, Seed: *seed})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("schemes over %d distinct files (%d instances), %d queries, horizon 5%%\n\n",
		len(env.Trace.Files), env.Trace.TotalInstances(), len(env.Trace.Queries))

	fmt.Println("== Figure 13: average query recall vs publishing budget (% items) ==")
	fmt.Println(metrics.Table("budget %", experiments.Figure13(env)...))

	fmt.Println("== Figure 14: average query distinct recall vs publishing budget ==")
	fmt.Println(metrics.Table("budget %", experiments.Figure14(env)...))

	fmt.Println("== Figure 15: SAM sampling fractions vs Random ==")
	fmt.Println(metrics.Table("budget %", experiments.Figure15(env)...))

	fmt.Println("== Extension: TF with Bloom-encoded term sets (§6.3 suggestion) ==")
	fmt.Printf("%-22s %12s %10s %8s\n", "scheme", "filter bytes", "fp rate", "avg QR")
	for _, p := range experiments.TFBloomSweep(env, 0.3) {
		fb, fp := "-", "-"
		if p.FilterBytes > 0 {
			fb = fmt.Sprintf("%d", p.FilterBytes)
			fp = fmt.Sprintf("%.4f", p.FPRate)
		}
		fmt.Printf("%-22s %12s %10s %8.1f\n", p.Name, fb, fp, p.AvgQR)
	}
	fmt.Println()

	fmt.Println("== Extension: recall vs system load (§4.3 future work) ==")
	fmt.Println(metrics.Table("load (k msgs/query)", experiments.ExtensionHorizonLoad(env)...))

	fmt.Println("== Extension: Eq. 3-5 cost model, QDR vs total cost/query ==")
	fmt.Println(metrics.Table("cost (k msgs/query)", experiments.ExtensionCostRecall(env, 5)))
}
