// Command piervet runs the repo's custom analyzer suite over package
// patterns, exactly as `go vet` would: findings print as
// file:line:col: [analyzer] message, and a non-zero exit means the
// tree violates an invariant. CI runs it as a required job:
//
//	go run ./cmd/piervet ./...
//
// Findings are suppressed per line with a mandatory-reason directive:
//
//	//lint:allow <analyzer> <reason>
//
// See internal/lint/doc.go for the invariant each analyzer encodes.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"piersearch/internal/lint/analysis"
	"piersearch/internal/lint/codecguard"
	"piersearch/internal/lint/ctxflow"
	"piersearch/internal/lint/determinism"
	"piersearch/internal/lint/load"
	"piersearch/internal/lint/locksafe"
	"piersearch/internal/lint/metricnames"
	"piersearch/internal/lint/spanhygiene"
)

// analyzers is the full suite, run over every target package.
var analyzers = []*analysis.Analyzer{
	codecguard.Analyzer,
	ctxflow.Analyzer,
	determinism.Analyzer,
	locksafe.Analyzer,
	metricnames.Analyzer,
	spanhygiene.Analyzer,
}

func main() {
	verbose := flag.Bool("v", false, "also print soft type-check errors and per-package progress")
	list := flag.Bool("list", false, "list the analyzers in the suite and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: piervet [-v] [packages]\n\nAnalyzers:\n")
		for _, a := range analyzers {
			fmt.Fprintf(os.Stderr, "  %-12s %s\n", a.Name, a.Doc)
		}
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range analyzers {
			fmt.Printf("%s: %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	findings, err := run(patterns, *verbose)
	if err != nil {
		fmt.Fprintf(os.Stderr, "piervet: %v\n", err)
		os.Exit(2)
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "piervet: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

// run loads patterns once and applies every analyzer to every target
// package, returning the formatted, allow-filtered findings sorted by
// position.
func run(patterns []string, verbose bool) ([]string, error) {
	loader := &load.Loader{}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		return nil, err
	}

	var findings []string
	for _, pkg := range pkgs {
		// Skip the analyzers' own fixture trees: they are violations on
		// purpose. (go list won't match testdata, but guard anyway for
		// explicit patterns.)
		if pkg.Pkg == nil {
			continue
		}
		if verbose {
			fmt.Fprintf(os.Stderr, "piervet: checking %s\n", pkg.ImportPath)
			for _, e := range pkg.TypeErrors {
				fmt.Fprintf(os.Stderr, "piervet: %s: soft type error: %v\n", pkg.ImportPath, e)
			}
		}
		allows := analysis.ParseAllows(loader.Fset(), pkg.Files)
		for _, a := range analyzers {
			pass := &analysis.Pass{
				Analyzer:  a,
				Fset:      loader.Fset(),
				Files:     pkg.Files,
				Pkg:       pkg.Pkg,
				TypesInfo: pkg.TypesInfo,
			}
			name := a.Name
			pass.Report = func(d analysis.Diagnostic) {
				if allows.Suppressed(loader.Fset(), name, d.Pos) {
					return
				}
				p := loader.Fset().Position(d.Pos)
				findings = append(findings, fmt.Sprintf("%s: [%s] %s", p, name, d.Message))
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s on %s: %w", a.Name, pkg.ImportPath, err)
			}
		}
	}
	sort.Strings(findings)
	return findings, nil
}
