// Command scale runs the virtual-time scale harness: a seeded 10k–100k
// node PIERSearch replay that finishes in seconds of wall-clock time and
// writes the schema-versioned BENCH_scale.json the repo commits as its
// perf trajectory.
//
// Regenerate the committed bench (defaults match it exactly):
//
//	go run ./cmd/scale -out BENCH_scale.json
//
// Explore other scales:
//
//	go run ./cmd/scale -nodes 100000 -queries 2000 -out /tmp/bench.json
//
// The same flags always produce byte-identical output; diff the JSON
// PR-over-PR to read the trajectory.
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"piersearch/internal/scale"
	"piersearch/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("scale: ")

	var (
		nodes     = flag.Int("nodes", 10_000, "cluster size")
		seed      = flag.Int64("seed", 1, "seed for IDs, latency, trace, and churn")
		files     = flag.Int("files", 20_000, "distinct files in the corpus")
		copies    = flag.Int("copies", 60_000, "total file instances")
		queries   = flag.Int("queries", 700, "replayed queries")
		publishes = flag.Int("publishes", 200, "measured publishes")
		qps       = flag.Float64("qps", 50, "query arrival rate (virtual time)")
		session   = flag.Duration("churn-session", 2*time.Minute, "mean node up-time (0 disables churn)")
		downtime  = flag.Duration("churn-downtime", time.Minute, "mean node down-time before rejoin")
		limit     = flag.Int("limit", 10, "per-query result limit")
		out       = flag.String("out", "BENCH_scale.json", "output path (- for stdout)")

		hotQueries = flag.Int("hot-queries", 300, "hot-key phase: measured Zipf queries per phase (0 disables)")
		hotWarmup  = flag.Int("hot-warmup", 0, "hot-key phase: warm-up queries (0 = origins*terms)")
		hotQPS     = flag.Float64("hot-qps", 200, "hot-key phase: arrival rate (virtual time)")
		hotTerms   = flag.Int("hot-terms", 12, "hot-key phase: hot vocabulary size")
		hotOrigins = flag.Int("hot-origins", 4, "hot-key phase: query origin count")
		hotZipf    = flag.Float64("hot-zipf", 1.1, "hot-key phase: Zipf exponent over the hot terms")

		traceSample    = flag.Int("trace-sample", 50, "record a distributed trace for every Nth query (0 disables)")
		routingLookups = flag.Int("routing-lookups", 200, "routing phase: measured iterative FindNode lookups (0 disables)")
		survivalKeys   = flag.Int("survival-keys", 400, "survival phase: sampled keys queried after churn (0 disables)")
		survivalRemove = flag.Float64("survival-remove", 0.3, "survival phase: fraction of non-core nodes removed")
		refresh        = flag.Duration("refresh", 0, "bucket refresh interval (0 = dht default)")
		republish      = flag.Duration("republish", 0, "provider republish interval (0 = harness default)")
	)
	flag.Parse()

	cfg := scale.Config{
		Nodes: *nodes,
		Seed:  *seed,
		Trace: trace.Config{
			DistinctFiles: *files,
			TargetCopies:  *copies,
			Queries:       *queries,
			Seed:          *seed,
		},
		Publishes: *publishes,
		QPS:       *qps,
		Limit:     *limit,
		Churn: scale.ChurnParams{
			MeanSession:  *session,
			MeanDowntime: *downtime,
		},
		HotKey: scale.HotKeyParams{
			Queries: *hotQueries,
			Warmup:  *hotWarmup,
			QPS:     *hotQPS,
			Terms:   *hotTerms,
			Origins: *hotOrigins,
			ZipfS:   *hotZipf,
		},
		TraceSample:    *traceSample,
		RoutingLookups: *routingLookups,
		Survival: scale.SurvivalParams{
			Keys:       *survivalKeys,
			RemoveFrac: *survivalRemove,
			Refresh:    *refresh,
			Republish:  *republish,
		},
	}

	start := time.Now()
	rep, err := scale.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("replayed %d nodes, %d queries (%d failed) in %v wall, %.1fs virtual",
		rep.Config.Nodes, rep.Query.Count, rep.Query.Failed, time.Since(start).Round(time.Millisecond), rep.VirtualSeconds)
	if hk := rep.HotKey; hk != nil {
		log.Printf("hot-key: hottest node %d -> %d msgs (%.1fx), p99 %.0fms -> %.0fms",
			hk.Baseline.HottestNode.Messages, hk.Cached.HottestNode.Messages,
			hk.HottestMsgReduction, hk.Baseline.LatencyMs.P99, hk.Cached.LatencyMs.P99)
	}
	if rt := rep.Routing; rt != nil {
		log.Printf("routing: %d lookups (%d failed), hops mean %.2f p99 %.0f, max table %d contacts",
			rt.Lookups, rt.Failed, rt.Hops.Mean, rt.Hops.P99, rt.MaxTableContacts)
	}
	if sv := rep.Survival; sv != nil {
		log.Printf("survival: %d/%d keys after removing %d nodes (rate %.3f), %d values republished",
			sv.Succeeded, sv.Keys, sv.RemovedNodes, sv.Rate, sv.RepublishedValues)
	}
	if len(rep.Traces) > 0 {
		t := rep.Traces[0]
		log.Printf("traces: %d sampled (first: %d spans across %d nodes, depth %d, %d rpcs)",
			len(rep.Traces), t.Spans, t.Nodes, t.Depth, t.RPCs)
	}

	if *out == "-" {
		b, err := rep.Marshal()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(string(b))
		return
	}
	if err := rep.WriteFile(*out); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote %s", *out)
}
